//! Production-shaped soak scenarios.
//!
//! The presets in [`crate::presets`] reproduce the paper's benchmark
//! shapes; real fleets fail differently. This module generates the
//! failure shapes industrial post-mortems catalogue — diurnal traffic
//! with flash crowds, retry storms that go metastable, cascading
//! cross-tier failures, partial deploys where two code versions serve
//! side by side, multi-tenant workloads with per-tenant SLOs, and
//! thousand-service topologies — each as a [`Scenario`]: an [`App`], a
//! traffic shape over logical time, and a list of [`FaultEpisode`]s
//! carrying machine-readable ground-truth labels (the injected
//! root-cause services/operations and the fault window).
//!
//! [`Scenario::schedule`] expands a scenario into a deterministic,
//! time-ordered list of simulated requests ready to replay against a
//! live `ServeRuntime` (see the `sleuth-soak` crate): arrivals follow
//! a Poisson process modulated by the traffic shape, requests landing
//! inside an episode window are simulated under the episode's merged
//! fault plan, and failed requests are retried per [`RetryPolicy`] —
//! with outstanding retries amplifying active fault severities, the
//! metastable-overload mechanism where the retry load itself keeps the
//! system saturated past the triggering fault.
//!
//! Severities are *calibrated*, not fixed: each stress fault is sized
//! against a healthy sample of its victim flow so the perturbation is
//! unambiguously SLO-violating regardless of which kernels the app
//! generator rolled. That keeps the ground-truth labels honest across
//! seeds — a property test can demand recovery instead of hoping the
//! fault was big enough.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::chaos::{Fault, FaultKind, FaultPlan, FaultTarget};
use crate::config::{App, Flow};
use crate::generator::{generate_app, GeneratorConfig};
use crate::kernels::KernelKind;
use crate::simulator::{SimulatedTrace, Simulator};
use sleuth_trace::Trace;

/// The production failure shape a [`Scenario`] reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Sinusoidal daily load with superimposed flash crowds; a stress
    /// fault lands during the largest crowd.
    DiurnalFlash,
    /// Error injection on a mid-tier service; failed requests retry
    /// with backoff and outstanding retries amplify the overload
    /// (metastability: the retry tail outlives the fault window).
    RetryStorm,
    /// Two overlapping, staggered stress episodes on a deep service
    /// and one of its ancestors in a different tier.
    Cascade,
    /// A canary: one pod of a service runs a slow code version while
    /// the other pods stay healthy (container-scoped fault).
    PartialDeploy,
    /// Named tenants with distinct flows, weights and SLO multipliers;
    /// the fault hits a low-traffic tenant's flow.
    MultiTenant,
    /// A ~thousand-service topology under a single calibrated stress
    /// episode — the paper's "large-scale" regime.
    ThousandServices,
}

impl ScenarioKind {
    /// Every kind, in a stable order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::DiurnalFlash,
        ScenarioKind::RetryStorm,
        ScenarioKind::Cascade,
        ScenarioKind::PartialDeploy,
        ScenarioKind::MultiTenant,
        ScenarioKind::ThousandServices,
    ];

    /// The kinds cheap enough for a smoke/CI budget (everything but
    /// [`ScenarioKind::ThousandServices`]).
    pub const SMALL: [ScenarioKind; 5] = [
        ScenarioKind::DiurnalFlash,
        ScenarioKind::RetryStorm,
        ScenarioKind::Cascade,
        ScenarioKind::PartialDeploy,
        ScenarioKind::MultiTenant,
    ];

    /// Stable snake_case name (CLI argument / checkpoint field).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::DiurnalFlash => "diurnal_flash",
            ScenarioKind::RetryStorm => "retry_storm",
            ScenarioKind::Cascade => "cascade",
            ScenarioKind::PartialDeploy => "partial_deploy",
            ScenarioKind::MultiTenant => "multi_tenant",
            ScenarioKind::ThousandServices => "thousand_services",
        }
    }

    /// Parse a [`ScenarioKind::name`] back.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// Machine-readable ground truth for one [`FaultEpisode`]: what an RCA
/// verdict must name for the episode to count as recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpisodeLabel {
    /// Root-cause services (names from [`App::services`]).
    pub services: BTreeSet<String>,
    /// Operations of the victim services on the faulted flow.
    pub operations: BTreeSet<String>,
    /// Faulted pods, when the fault is narrower than the service
    /// (partial deploys); empty for service-wide faults.
    pub pods: BTreeSet<String>,
    /// The tenant whose flow is hit, when the scenario is
    /// multi-tenant.
    pub tenant: Option<String>,
    /// Stable fault-class tag (`cpu_stress`, `error_injection`, …).
    pub fault: &'static str,
}

/// One injected fault with its window and ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEpisode {
    /// Window start, logical µs from scenario start (inclusive).
    pub start_us: u64,
    /// Window end, logical µs (exclusive).
    pub end_us: u64,
    /// Faults active during the window.
    pub plan: FaultPlan,
    /// What RCA must recover.
    pub label: EpisodeLabel,
}

impl FaultEpisode {
    /// Whether the episode is active at logical time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        self.start_us <= t && t < self.end_us
    }
}

/// A transient traffic surge multiplying the diurnal base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Surge start, logical µs (inclusive).
    pub start_us: u64,
    /// Surge end, logical µs (exclusive).
    pub end_us: u64,
    /// Rate multiplier while active.
    pub multiplier: f64,
}

/// Arrival-rate model: diurnal sinusoid plus flash crowds.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficShape {
    /// Mean arrival rate, requests per logical second.
    pub base_rate_per_sec: f64,
    /// Relative amplitude of the diurnal sinusoid in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Period of the sinusoid, logical µs.
    pub diurnal_period_us: u64,
    /// Superimposed surges.
    pub flash_crowds: Vec<FlashCrowd>,
}

impl TrafficShape {
    /// A flat shape at `rate` requests per logical second.
    pub fn flat(rate: f64) -> Self {
        TrafficShape {
            base_rate_per_sec: rate,
            diurnal_amplitude: 0.0,
            diurnal_period_us: 1,
            flash_crowds: Vec::new(),
        }
    }

    /// Instantaneous arrival rate at logical time `t`, per second.
    pub fn rate_at(&self, t: u64) -> f64 {
        let phase =
            2.0 * std::f64::consts::PI * (t as f64) / (self.diurnal_period_us.max(1) as f64);
        let mut rate = self.base_rate_per_sec * (1.0 + self.diurnal_amplitude * phase.sin());
        for c in &self.flash_crowds {
            if c.start_us <= t && t < c.end_us {
                rate *= c.multiplier;
            }
        }
        rate.max(self.base_rate_per_sec * 0.05).max(0.01)
    }
}

/// Client retry behaviour, the engine of metastable overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries per failed request (exponential backoff).
    pub max_retries: u32,
    /// First backoff, logical µs (doubles per attempt).
    pub backoff_us: u64,
    /// Each outstanding retry amplifies active fault severities by
    /// this fraction — retry load feeding the overload back.
    pub overload_gain: f64,
}

/// One tenant of a multi-tenant scenario: a flow, a traffic share and
/// an SLO multiplier over the flow's healthy p99.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (`gold`, `silver`, …).
    pub name: String,
    /// Index into [`App::flows`].
    pub flow: usize,
    /// Relative traffic weight.
    pub weight: f64,
    /// The tenant's latency SLO as a multiple of its flow's healthy
    /// p99 (smaller = stricter).
    pub slo_multiplier: f64,
}

/// Scale knobs shared by every generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParams {
    /// RPC sites of the generated app (overridden upward for
    /// [`ScenarioKind::ThousandServices`]).
    pub num_rpcs: usize,
    /// Seed for app topology generation (distinct from the scenario
    /// seed so one fitted pipeline serves many scenario seeds).
    pub app_seed: u64,
    /// Scenario length, logical µs.
    pub duration_us: u64,
    /// Base arrival rate, requests per logical second.
    pub base_rate_per_sec: f64,
}

impl ScenarioParams {
    /// CI-budget scale: a small app, eight logical minutes of traffic.
    pub fn smoke() -> Self {
        ScenarioParams {
            num_rpcs: 24,
            app_seed: 1,
            duration_us: 480_000_000,
            base_rate_per_sec: 1.5,
        }
    }

    /// Soak scale: a bigger app, one logical hour per scenario.
    pub fn soak() -> Self {
        ScenarioParams {
            num_rpcs: 64,
            app_seed: 1,
            duration_us: 3_600_000_000,
            base_rate_per_sec: 4.0,
        }
    }
}

/// A fully-specified replayable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `<kind>-s<seed>`.
    pub name: String,
    /// The failure shape.
    pub kind: ScenarioKind,
    /// The application under test.
    pub app: App,
    /// Scenario length, logical µs.
    pub duration_us: u64,
    /// Arrival-rate model.
    pub shape: TrafficShape,
    /// Injected faults with ground-truth labels (empty for a
    /// fault-free control run).
    pub episodes: Vec<FaultEpisode>,
    /// Traffic split; every scenario has at least one tenant per flow
    /// it exercises.
    pub tenants: Vec<TenantSpec>,
    /// Client retry behaviour, when the scenario models retries.
    pub retry: Option<RetryPolicy>,
    /// Seed driving episode placement, arrivals and simulation.
    pub seed: u64,
}

/// One simulated request of a [`Schedule`].
#[derive(Debug, Clone)]
pub struct ScheduledTrace {
    /// Arrival time, logical µs from scenario start.
    pub at_us: u64,
    /// Index into [`Scenario::tenants`].
    pub tenant: usize,
    /// Original trace id when this request is a retry.
    pub retry_of: Option<u64>,
    /// Retry attempt (0 for fresh arrivals).
    pub attempt: u32,
    /// Indices of the episodes active at arrival.
    pub episodes_active: Vec<usize>,
    /// The simulated request: trace plus per-trace ground truth.
    pub sim: SimulatedTrace,
}

/// A scenario expanded to concrete, time-ordered traffic.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Requests sorted by arrival time; trace ids are unique and
    /// sequential from 1.
    pub traces: Vec<ScheduledTrace>,
    /// How many of them are retries.
    pub retries: usize,
    /// Total span count (for conservation assertions).
    pub spans: usize,
    /// Whether the hard cap on generated traffic truncated the run.
    pub truncated: bool,
}

/// App generation shared by every kind: error-free baseline (so
/// fault-free runs are provably clean), modest kernel tails, three
/// flows (multi-tenant needs them), generous RPC timeout.
fn app_config(kind: ScenarioKind, params: &ScenarioParams) -> GeneratorConfig {
    let rpcs = match kind {
        ScenarioKind::ThousandServices => params.num_rpcs.max(1100),
        _ => params.num_rpcs,
    };
    let mut cfg = GeneratorConfig::synthetic(rpcs);
    if kind == ScenarioKind::ThousandServices {
        cfg.num_services = cfg.num_services.max(1000);
    }
    cfg.name = format!("soak-{rpcs}");
    cfg.num_flows = 3;
    cfg.base_error_rate = 0.0;
    cfg.kernel_sigma_range = (0.15, 0.4);
    cfg.timeout_us = 30_000_000;
    cfg.async_fraction = 0.05;
    cfg
}

/// Sync-path structure of a flow: which nodes a synchronous request
/// path reaches (fire-and-forget subtrees never perturb the root, so
/// victims must sit on the sync path to be recoverable).
struct FlowIndex {
    parent: Vec<Option<usize>>,
    sync: Vec<bool>,
}

fn index_flow(flow: &Flow) -> FlowIndex {
    let n = flow.nodes.len();
    let mut parent = vec![None; n];
    let mut sync = vec![false; n];
    sync[0] = true;
    // Children always have larger indices (validated topological
    // order), so one forward pass settles the whole tree.
    for i in 0..n {
        let node = &flow.nodes[i];
        let async_pos: BTreeSet<usize> = node.exec.async_children.iter().copied().collect();
        for (pos, &c) in node.children.iter().enumerate() {
            parent[c] = Some(i);
            sync[c] = sync[i] && !async_pos.contains(&pos);
        }
    }
    FlowIndex { parent, sync }
}

/// Expected healthy kernel time of a flow node, µs (median of pre +
/// post kernels) — the lever a stress fault multiplies.
fn node_kernel_us(flow: &Flow, node: usize) -> f64 {
    flow.nodes[node].pre_kernel.mu.exp() + flow.nodes[node].post_kernel.mu.exp()
}

/// Non-root sync-path nodes ordered by descending kernel weight: the
/// best stress victims first.
fn victim_candidates(flow: &Flow) -> Vec<usize> {
    let idx = index_flow(flow);
    let mut nodes: Vec<usize> = (1..flow.nodes.len()).filter(|&i| idx.sync[i]).collect();
    if nodes.is_empty() {
        nodes.push(0);
    }
    nodes.sort_by(|&a, &b| {
        node_kernel_us(flow, b)
            .partial_cmp(&node_kernel_us(flow, a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    nodes
}

/// The stress kind with full affinity for the node's heavier kernel,
/// so severity translates 1:1 into slowdown.
fn matched_stress(flow: &Flow, node: usize) -> FaultKind {
    let n = &flow.nodes[node];
    let kind = if n.pre_kernel.mu.exp() >= n.post_kernel.mu.exp() {
        n.pre_kernel.kind
    } else {
        n.post_kernel.kind
    };
    match kind {
        KernelKind::Cpu | KernelKind::Scheduler => FaultKind::CpuStress,
        KernelKind::Memory => FaultKind::MemoryStress,
        KernelKind::Disk => FaultKind::DiskStress,
    }
}

fn fault_tag(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::CpuStress => "cpu_stress",
        FaultKind::MemoryStress => "memory_stress",
        FaultKind::DiskStress => "disk_stress",
        FaultKind::NetworkDelay => "network_delay",
        FaultKind::ErrorInjection => "error_injection",
    }
}

/// Healthy worst-case duration of a flow, estimated by simulation —
/// the yardstick severities are calibrated against.
fn healthy_ceiling_us(app: &App, flow: usize, seed: u64) -> f64 {
    let sim = Simulator::new(app);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6865_616c); // "heal"
    let healthy = FaultPlan::healthy();
    let mut max_us = 0u64;
    for i in 0..48 {
        let t = sim.simulate(flow, &healthy, 900_000_000 + i, &mut rng);
        max_us = max_us.max(t.trace.total_duration_us());
    }
    max_us as f64
}

/// Severity that makes a stress fault on `victim` add several times
/// the flow's healthy worst case — unambiguously SLO-violating and
/// dominant in the trace, whatever kernels the generator rolled.
fn calibrated_severity(app: &App, flow_idx: usize, victim: usize, seed: u64) -> f64 {
    let flow = &app.flows[flow_idx];
    let ceiling = healthy_ceiling_us(app, flow_idx, seed);
    let lever = node_kernel_us(flow, victim).max(1.0);
    ((6.0 * ceiling) / lever).clamp(25.0, 50_000.0)
}

/// One fault per pod of `service` — a service-wide injection.
fn service_faults(app: &App, service: usize, kind: FaultKind, severity: f64) -> Vec<Fault> {
    (0..app.services[service].pods.len())
        .map(|pod| Fault {
            kind,
            target: FaultTarget::Pod { service, pod },
            severity,
        })
        .collect()
}

/// Label for a service-wide fault on `flow`: the victim service plus
/// every operation it serves on that flow.
fn service_label(app: &App, flow: &Flow, service: usize, fault: &'static str) -> EpisodeLabel {
    let mut operations = BTreeSet::new();
    for n in &flow.nodes {
        if n.service == service {
            operations.insert(n.op_name.clone());
        }
    }
    EpisodeLabel {
        services: [app.services[service].name.clone()].into_iter().collect(),
        operations,
        pods: BTreeSet::new(),
        tenant: None,
        fault,
    }
}

fn window(duration_us: u64, a: f64, b: f64) -> (u64, u64) {
    (
        (duration_us as f64 * a) as u64,
        (duration_us as f64 * b) as u64,
    )
}

/// A calibrated service-wide stress episode on the flow's best victim
/// (rank-`rank` candidate), over `[a, b]` fractions of the duration.
fn stress_episode(
    app: &App,
    flow_idx: usize,
    rank: usize,
    duration_us: u64,
    a: f64,
    b: f64,
    seed: u64,
) -> FaultEpisode {
    let flow = &app.flows[flow_idx];
    let candidates = victim_candidates(flow);
    let victim = candidates[rank.min(candidates.len() - 1)];
    let service = flow.nodes[victim].service;
    let kind = matched_stress(flow, victim);
    let severity = calibrated_severity(app, flow_idx, victim, seed);
    let (start_us, end_us) = window(duration_us, a, b);
    FaultEpisode {
        start_us,
        end_us,
        plan: FaultPlan {
            faults: service_faults(app, service, kind, severity),
        },
        label: service_label(app, flow, service, fault_tag(kind)),
    }
}

/// One tenant per flow, weighted like the flows themselves.
fn default_tenants(app: &App) -> Vec<TenantSpec> {
    app.flows
        .iter()
        .enumerate()
        .map(|(i, f)| TenantSpec {
            name: f.name.clone(),
            flow: i,
            weight: f.weight,
            slo_multiplier: 3.0,
        })
        .collect()
}

impl Scenario {
    /// Generate a scenario of the given kind. Deterministic in
    /// `(kind, params, seed)`; the app topology depends only on
    /// `params`, so scenarios sharing params share the app (and a
    /// pipeline fitted for one serves them all).
    pub fn generate(kind: ScenarioKind, params: &ScenarioParams, seed: u64) -> Scenario {
        let cfg = app_config(kind, params);
        let app = generate_app(&cfg, params.app_seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7363_656e); // "scen"
        let dur = params.duration_us;
        let mut shape = TrafficShape {
            base_rate_per_sec: params.base_rate_per_sec,
            diurnal_amplitude: 0.3,
            diurnal_period_us: dur.max(2),
            flash_crowds: Vec::new(),
        };
        let mut tenants = default_tenants(&app);
        let mut retry = None;
        let mut episodes = Vec::new();

        match kind {
            ScenarioKind::DiurnalFlash => {
                shape.diurnal_amplitude = 0.5;
                shape.diurnal_period_us = (dur / 2).max(2);
                let (s1, e1) = window(dur, 0.28, 0.36);
                let (s2, e2) = window(dur, 0.68, 0.78);
                shape.flash_crowds = vec![
                    FlashCrowd {
                        start_us: s1,
                        end_us: e1,
                        multiplier: rng.gen_range(2.0..=3.0),
                    },
                    FlashCrowd {
                        start_us: s2,
                        end_us: e2,
                        multiplier: rng.gen_range(3.0..=4.0),
                    },
                ];
                // The fault lands inside the second, larger crowd: peak
                // load and a real root cause at once.
                episodes.push(stress_episode(&app, 0, 0, dur, 0.70, 0.76, seed));
            }
            ScenarioKind::RetryStorm => {
                // Backoff is a sizable fraction of the fault window so
                // the retry tail reliably outlives it (metastability).
                retry = Some(RetryPolicy {
                    max_retries: 2,
                    backoff_us: (dur / 8).max(1_000_000),
                    overload_gain: 0.05,
                });
                let flow = &app.flows[0];
                let candidates = victim_candidates(flow);
                let victim = candidates[rng.gen_range(0..candidates.len().min(3))];
                let service = flow.nodes[victim].service;
                let (start_us, end_us) = window(dur, 0.35, 0.55);
                episodes.push(FaultEpisode {
                    start_us,
                    end_us,
                    plan: FaultPlan {
                        faults: service_faults(&app, service, FaultKind::ErrorInjection, 0.9),
                    },
                    label: service_label(&app, flow, service, "error_injection"),
                });
            }
            ScenarioKind::Cascade => {
                let flow = &app.flows[0];
                let idx = index_flow(flow);
                let candidates = victim_candidates(flow);
                let deep = candidates[0];
                // Walk the sync ancestor chain for a different service
                // in a different (shallower) tier.
                let deep_service = flow.nodes[deep].service;
                let mut ancestor = None;
                let mut cur = idx.parent[deep];
                while let Some(p) = cur {
                    if p != 0 && flow.nodes[p].service != deep_service {
                        ancestor = Some(p);
                        break;
                    }
                    cur = idx.parent[p];
                }
                // Tiny flows may leave only the root as ancestor; a
                // distinct second victim keeps the cascade two-service.
                let upstream = ancestor.unwrap_or_else(|| {
                    candidates
                        .iter()
                        .copied()
                        .find(|&c| flow.nodes[c].service != deep_service)
                        .unwrap_or(0)
                });
                let mk = |victim: usize, a: f64, b: f64, salt: u64| {
                    let service = flow.nodes[victim].service;
                    let kind = matched_stress(flow, victim);
                    let severity = calibrated_severity(&app, 0, victim, seed ^ salt);
                    let (start_us, end_us) = window(dur, a, b);
                    FaultEpisode {
                        start_us,
                        end_us,
                        plan: FaultPlan {
                            faults: service_faults(&app, service, kind, severity),
                        },
                        label: service_label(&app, flow, service, fault_tag(kind)),
                    }
                };
                episodes.push(mk(deep, 0.30, 0.55, 0));
                episodes.push(mk(upstream, 0.42, 0.66, 1));
            }
            ScenarioKind::PartialDeploy => {
                let flow = &app.flows[0];
                let candidates = victim_candidates(flow);
                let victim = candidates[0];
                let service = flow.nodes[victim].service;
                let canary = app.services[service].pods.len() - 1;
                let kind = matched_stress(flow, victim);
                let severity = calibrated_severity(&app, 0, victim, seed);
                let (start_us, end_us) = window(dur, 0.20, 0.85);
                let mut label = service_label(&app, flow, service, fault_tag(kind));
                label
                    .pods
                    .insert(app.services[service].pods[canary].name.clone());
                episodes.push(FaultEpisode {
                    start_us,
                    end_us,
                    plan: FaultPlan {
                        faults: vec![Fault {
                            kind,
                            target: FaultTarget::Container {
                                service,
                                pod: canary,
                            },
                            severity,
                        }],
                    },
                    label,
                });
            }
            ScenarioKind::MultiTenant => {
                let nf = app.flows.len();
                tenants = vec![
                    TenantSpec {
                        name: "gold".into(),
                        flow: 0,
                        weight: 0.55,
                        slo_multiplier: 2.0,
                    },
                    TenantSpec {
                        name: "silver".into(),
                        flow: 1 % nf,
                        weight: 0.30,
                        slo_multiplier: 3.0,
                    },
                    TenantSpec {
                        name: "bronze".into(),
                        flow: 2 % nf,
                        weight: 0.15,
                        slo_multiplier: 4.0,
                    },
                ];
                let victim_flow = 1 % nf;
                let flow = &app.flows[victim_flow];
                // Prefer a victim that gold's flow never touches, so
                // the blast radius is genuinely tenant-scoped.
                let gold_services: BTreeSet<usize> =
                    app.flows[0].nodes.iter().map(|n| n.service).collect();
                let candidates = victim_candidates(flow);
                let victim = candidates
                    .iter()
                    .copied()
                    .find(|&c| !gold_services.contains(&flow.nodes[c].service))
                    .unwrap_or(candidates[0]);
                let service = flow.nodes[victim].service;
                let kind = matched_stress(flow, victim);
                let severity = calibrated_severity(&app, victim_flow, victim, seed);
                let (start_us, end_us) = window(dur, 0.40, 0.62);
                let mut label = service_label(&app, flow, service, fault_tag(kind));
                label.tenant = Some("silver".into());
                episodes.push(FaultEpisode {
                    start_us,
                    end_us,
                    plan: FaultPlan {
                        faults: service_faults(&app, service, kind, severity),
                    },
                    label,
                });
            }
            ScenarioKind::ThousandServices => {
                shape.diurnal_amplitude = 0.25;
                episodes.push(stress_episode(&app, 0, 0, dur, 0.35, 0.60, seed));
            }
        }

        Scenario {
            name: format!("{}-s{seed}", kind.name()),
            kind,
            app,
            duration_us: dur,
            shape,
            episodes,
            tenants,
            retry,
            seed,
        }
    }

    /// The same scenario with every fault stripped: the control run
    /// that must produce zero anomaly verdicts.
    pub fn fault_free(&self) -> Scenario {
        Scenario {
            episodes: Vec::new(),
            ..self.clone()
        }
    }

    /// A deterministic healthy training corpus covering every flow
    /// round-robin (so the detector learns an SLO for each root op).
    pub fn training_corpus(&self, n: usize) -> Vec<Trace> {
        let sim = Simulator::new(&self.app);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x7472_6169); // "trai"
        let healthy = FaultPlan::healthy();
        let nf = self.app.flows.len();
        (0..n)
            .map(|i| {
                sim.simulate(i % nf, &healthy, 1_000_000_000 + i as u64, &mut rng)
                    .trace
            })
            .collect()
    }

    /// Upper bound on generated requests: headroom over the expected
    /// arrival count so a runaway retry loop cannot OOM the harness.
    fn trace_cap(&self) -> usize {
        let secs = self.duration_us as f64 / 1e6;
        let peak: f64 = self
            .shape
            .flash_crowds
            .iter()
            .map(|c| c.multiplier)
            .fold(1.0 + self.shape.diurnal_amplitude, f64::max);
        ((secs * self.shape.base_rate_per_sec * peak * 4.0) as usize).max(64) + 1024
    }

    /// Expand the scenario into deterministic, time-ordered traffic.
    pub fn schedule(&self) -> Schedule {
        let sim = Simulator::new(&self.app);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x7366_6c6f); // "sflo"
        let total_weight: f64 = self.tenants.iter().map(|t| t.weight).sum();
        let cap = self.trace_cap();

        let mut traces: Vec<ScheduledTrace> = Vec::new();
        // (due, original trace id, tenant, attempt) min-heap of retries.
        let mut pending: BinaryHeap<Reverse<(u64, u64, usize, u32)>> = BinaryHeap::new();
        let mut outstanding: u32 = 0;
        let mut retries = 0usize;
        let mut spans = 0usize;
        let mut next_id: u64 = 1;
        let mut truncated = false;

        let emit = |at: u64,
                    tenant: usize,
                    retry_of: Option<u64>,
                    attempt: u32,
                    outstanding: u32,
                    rng: &mut ChaCha8Rng,
                    traces: &mut Vec<ScheduledTrace>,
                    pending: &mut BinaryHeap<Reverse<(u64, u64, usize, u32)>>,
                    retries: &mut usize,
                    spans: &mut usize,
                    next_id: &mut u64|
         -> u32 {
            let episodes_active: Vec<usize> = self
                .episodes
                .iter()
                .enumerate()
                .filter(|(_, e)| e.active_at(at))
                .map(|(i, _)| i)
                .collect();
            let mut plan = FaultPlan::healthy();
            for &i in &episodes_active {
                plan.faults.extend_from_slice(&self.episodes[i].plan.faults);
            }
            // Metastable overload: outstanding retry load amplifies
            // whatever fault is active.
            if let Some(rp) = &self.retry {
                if outstanding > 0 && !plan.faults.is_empty() {
                    let amp = 1.0 + rp.overload_gain * outstanding as f64;
                    for f in &mut plan.faults {
                        f.severity = match f.kind {
                            FaultKind::ErrorInjection => (f.severity * amp).min(1.0),
                            _ => f.severity * amp,
                        };
                    }
                }
            }
            let id = *next_id;
            *next_id += 1;
            let st = sim.simulate(self.tenants[tenant].flow, &plan, id, rng);
            *spans += st.trace.spans().len();
            if retry_of.is_some() {
                *retries += 1;
            }
            let mut scheduled_retry = 0;
            if let Some(rp) = &self.retry {
                if st.trace.is_error() && attempt < rp.max_retries {
                    let backoff = rp.backoff_us << attempt;
                    let jitter = rng.gen_range(0..=rp.backoff_us / 4 + 1);
                    pending.push(Reverse((
                        at + backoff + jitter,
                        retry_of.unwrap_or(id),
                        tenant,
                        attempt + 1,
                    )));
                    scheduled_retry = 1;
                }
            }
            traces.push(ScheduledTrace {
                at_us: at,
                tenant,
                retry_of,
                attempt,
                episodes_active,
                sim: st,
            });
            scheduled_retry
        };

        let pick_tenant = |rng: &mut ChaCha8Rng| -> usize {
            let mut roll = rng.gen_range(0.0..1.0f64) * total_weight;
            for (i, t) in self.tenants.iter().enumerate() {
                roll -= t.weight;
                if roll <= 0.0 {
                    return i;
                }
            }
            self.tenants.len() - 1
        };

        let mut t: u64 = 0;
        loop {
            while let Some(&Reverse((due, orig, tenant, attempt))) = pending.peek() {
                if due > t {
                    break;
                }
                pending.pop();
                outstanding -= 1;
                outstanding += emit(
                    due,
                    tenant,
                    Some(orig),
                    attempt,
                    outstanding,
                    &mut rng,
                    &mut traces,
                    &mut pending,
                    &mut retries,
                    &mut spans,
                    &mut next_id,
                );
            }
            if t >= self.duration_us {
                break;
            }
            if traces.len() >= cap {
                truncated = true;
                break;
            }
            let tenant = pick_tenant(&mut rng);
            outstanding += emit(
                t,
                tenant,
                None,
                0,
                outstanding,
                &mut rng,
                &mut traces,
                &mut pending,
                &mut retries,
                &mut spans,
                &mut next_id,
            );
            // Poisson arrivals at the shaped instantaneous rate.
            let mean_gap_us = 1_000_000.0 / self.shape.rate_at(t);
            let u: f64 = rng.gen_range(0.0..1.0f64).max(1e-12);
            t += ((-u.ln()) * mean_gap_us).clamp(1.0, 600_000_000.0) as u64 + 1;
        }
        // The metastable tail: retries scheduled inside the window land
        // after it — drain them in due order.
        while let Some(Reverse((due, orig, tenant, attempt))) = pending.pop() {
            if traces.len() >= cap {
                truncated = true;
                break;
            }
            outstanding -= 1;
            outstanding += emit(
                due,
                tenant,
                Some(orig),
                attempt,
                outstanding,
                &mut rng,
                &mut traces,
                &mut pending,
                &mut retries,
                &mut spans,
                &mut next_id,
            );
        }
        let _ = outstanding;
        traces.sort_by_key(|s| s.at_us);
        Schedule {
            traces,
            retries,
            spans,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams {
            num_rpcs: 24,
            app_seed: 1,
            duration_us: 60_000_000,
            base_rate_per_sec: 1.0,
        }
    }

    #[test]
    fn every_kind_generates_a_valid_labelled_scenario() {
        for kind in ScenarioKind::SMALL {
            let sc = Scenario::generate(kind, &params(), 7);
            sc.app.validate().unwrap();
            assert!(!sc.episodes.is_empty(), "{kind:?} has no episodes");
            for e in &sc.episodes {
                assert!(e.start_us < e.end_us && e.end_us <= sc.duration_us);
                assert!(!e.label.services.is_empty(), "{kind:?} label empty");
                assert!(!e.plan.is_healthy());
                let names: BTreeSet<&str> =
                    sc.app.services.iter().map(|s| s.name.as_str()).collect();
                for s in &e.label.services {
                    assert!(names.contains(s.as_str()), "label service {s} unknown");
                }
            }
            assert!(!sc.tenants.is_empty());
            for t in &sc.tenants {
                assert!(t.flow < sc.app.flows.len());
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_and_conserves_spans() {
        let sc = Scenario::generate(ScenarioKind::RetryStorm, &params(), 3);
        let a = sc.schedule();
        let b = sc.schedule();
        assert_eq!(a.traces.len(), b.traces.len());
        assert_eq!(a.spans, b.spans);
        assert_eq!(
            a.spans,
            a.traces
                .iter()
                .map(|s| s.sim.trace.spans().len())
                .sum::<usize>()
        );
        assert!(a.traces.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(!a.truncated);
        // Unique sequential ids starting at 1.
        let mut ids: Vec<u64> = a.traces.iter().map(|s| s.sim.trace.trace_id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=a.traces.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn retry_storm_goes_metastable() {
        let sc = Scenario::generate(ScenarioKind::RetryStorm, &params(), 5);
        let schedule = sc.schedule();
        assert!(schedule.retries > 0, "no retries fired");
        let episode_end = sc.episodes[0].end_us;
        // Some retry tail lands after the fault window closes.
        assert!(
            schedule
                .traces
                .iter()
                .any(|s| s.retry_of.is_some() && s.at_us >= episode_end),
            "retry tail did not outlive the fault window"
        );
        for s in &schedule.traces {
            if let Some(orig) = s.retry_of {
                assert!(orig < s.sim.trace.trace_id());
            }
        }
    }

    #[test]
    fn fault_free_schedules_have_empty_ground_truth() {
        for kind in ScenarioKind::SMALL {
            let sc = Scenario::generate(kind, &params(), 11).fault_free();
            assert!(sc.episodes.is_empty());
            let schedule = sc.schedule();
            assert!(!schedule.traces.is_empty());
            for s in &schedule.traces {
                assert!(
                    s.sim.ground_truth.is_empty(),
                    "{kind:?} fault-free trace has gt"
                );
                assert!(!s.sim.trace.is_error(), "{kind:?} fault-free trace errored");
                assert!(s.episodes_active.is_empty());
            }
            assert_eq!(schedule.retries, 0);
        }
    }

    #[test]
    fn faulted_windows_produce_labelled_ground_truth() {
        for kind in ScenarioKind::SMALL {
            let sc = Scenario::generate(kind, &params(), 13);
            let schedule = sc.schedule();
            for (i, e) in sc.episodes.iter().enumerate() {
                let hits = schedule
                    .traces
                    .iter()
                    .filter(|s| s.episodes_active.contains(&i))
                    .filter(|s| {
                        s.sim
                            .ground_truth
                            .services
                            .intersection(&e.label.services)
                            .count()
                            > 0
                    })
                    .count();
                assert!(hits > 0, "{kind:?} episode {i} perturbed no trace");
            }
            // Ground truth only appears inside episode windows.
            for s in &schedule.traces {
                if s.episodes_active.is_empty() && s.retry_of.is_none() {
                    assert!(s.sim.ground_truth.is_empty());
                }
            }
        }
    }

    #[test]
    fn partial_deploy_only_hits_the_canary_pod() {
        let sc = Scenario::generate(ScenarioKind::PartialDeploy, &params(), 17);
        let e = &sc.episodes[0];
        assert_eq!(e.label.pods.len(), 1);
        let canary = e.label.pods.iter().next().unwrap();
        let schedule = sc.schedule();
        let (mut affected, mut clean_in_window) = (0, 0);
        for s in &schedule.traces {
            if !s.episodes_active.is_empty() {
                if s.sim.ground_truth.pods.contains(canary) {
                    affected += 1;
                } else if s.sim.ground_truth.is_empty() {
                    clean_in_window += 1;
                }
                assert!(
                    s.sim.ground_truth.pods.is_empty() || s.sim.ground_truth.pods.contains(canary)
                );
            }
        }
        // Both code versions serve inside the window: some requests hit
        // the slow canary, some the healthy pods.
        assert!(affected > 0, "canary never hit");
        assert!(clean_in_window > 0, "healthy pods never hit");
    }

    #[test]
    fn multi_tenant_fault_hits_the_labelled_tenant() {
        let sc = Scenario::generate(ScenarioKind::MultiTenant, &params(), 19);
        assert_eq!(sc.tenants.len(), 3);
        let e = &sc.episodes[0];
        assert_eq!(e.label.tenant.as_deref(), Some("silver"));
        let silver_flow = sc.tenants.iter().find(|t| t.name == "silver").unwrap().flow;
        // Services the victim flow shares with other tenants (small
        // apps reuse services across flows; the blast radius is only
        // tenant-exclusive when the topology allows it).
        let victim_services: BTreeSet<usize> = sc.episodes[0]
            .label
            .services
            .iter()
            .map(|n| sc.app.services.iter().position(|s| &s.name == n).unwrap())
            .collect();
        let schedule = sc.schedule();
        let mut silver_hit = false;
        for s in &schedule.traces {
            if s.sim.ground_truth.is_empty() {
                continue;
            }
            let flow = sc.tenants[s.tenant].flow;
            silver_hit |= flow == silver_flow;
            // Any collateral damage must go through a shared service.
            if flow != silver_flow {
                assert!(
                    sc.app.flows[flow]
                        .nodes
                        .iter()
                        .any(|n| victim_services.contains(&n.service)),
                    "tenant {} hit without touching the victim",
                    sc.tenants[s.tenant].name
                );
            }
        }
        assert!(silver_hit, "the labelled tenant was never affected");
    }

    #[test]
    fn diurnal_flash_shape_modulates_rate() {
        let sc = Scenario::generate(ScenarioKind::DiurnalFlash, &params(), 23);
        assert_eq!(sc.shape.flash_crowds.len(), 2);
        let crowd = sc.shape.flash_crowds[1];
        let mid = (crowd.start_us + crowd.end_us) / 2;
        assert!(sc.shape.rate_at(mid) > 2.0 * sc.shape.base_rate_per_sec);
        // Scenarios share one app across kinds (same params ⇒ one
        // fitted pipeline serves them all).
        let other = Scenario::generate(ScenarioKind::Cascade, &params(), 23);
        assert_eq!(sc.app, other.app);
    }

    #[test]
    fn thousand_services_topology_is_large() {
        let p = ScenarioParams {
            num_rpcs: 1100,
            app_seed: 1,
            duration_us: 10_000_000,
            base_rate_per_sec: 0.5,
        };
        let sc = Scenario::generate(ScenarioKind::ThousandServices, &p, 29);
        assert!(sc.app.num_services() >= 1000, "{}", sc.app.num_services());
        assert!(!sc.episodes.is_empty());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }
}
