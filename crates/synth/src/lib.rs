//! Synthetic microservice benchmark generation and simulation (§5).
//!
//! The Sleuth paper's evaluation needs microservice applications far
//! larger than any open-source benchmark (hundreds of services, RPC
//! trees with thousands of spans). Its §5 describes a generator that
//! emits deployable gRPC services; this crate reproduces that generator
//! and — since this reproduction cannot run a Kubernetes cluster —
//! replaces the deployed services with a faithful discrete-event
//! **simulator** that executes the generated RPC/execution graphs and
//! emits OpenTelemetry-shaped spans.
//!
//! The pieces mirror §5.1–5.2:
//!
//! * [`config`] — the application model: services with tiers and pod
//!   placements, operation flows, per-node execution plans and local
//!   workload kernels (the paper's configuration file),
//! * [`generator`] — RPC/service allocation, random RPC-dependency DAGs
//!   per operation flow, random execution graphs, kernel assignment,
//! * [`kernels`] — pluggable local-workload kernels with heavy-tailed
//!   log-normal service times, stressing distinct resources (CPU,
//!   memory, disk, network),
//! * [`simulator`] — executes one request through a flow: sequential /
//!   parallel stages, synchronous RPCs with timeouts, asynchronous
//!   producer/consumer messages, error generation and propagation,
//! * [`chaos`] — fault injection (the paper's Chaosblade substitute) at
//!   container, pod, and node scope, with ground-truth logging,
//! * [`presets`] — SockShop, SocialNetwork and Synthetic-{16,64,256,1024}
//!   topologies matching the paper's Table 1,
//! * [`updates`] — the live service updates A–D of §6.4,
//! * [`workload`] — corpus generation: normal training corpora and
//!   labelled anomaly queries for evaluation,
//! * [`scenario`] — production-shaped soak scenarios (diurnal + flash
//!   crowd traffic, retry storms, cascades, partial deploys,
//!   multi-tenant workloads, thousand-service topologies) with
//!   ground-truth-labelled fault episodes, replayable through the
//!   `sleuth-soak` harness.
//!
//! # Example
//!
//! ```
//! use sleuth_synth::presets;
//! use sleuth_synth::workload::CorpusBuilder;
//!
//! let app = presets::synthetic(16, 42);
//! let corpus = CorpusBuilder::new(&app).seed(7).normal_traces(20);
//! assert_eq!(corpus.traces.len(), 20);
//! ```

pub mod chaos;
pub mod config;
pub mod generator;
pub mod kernels;
pub mod presets;
pub mod scenario;
pub mod simulator;
pub mod updates;
pub mod workload;

pub use chaos::{ChaosEngine, Fault, FaultKind, FaultPlan, FaultTarget};
pub use config::{App, ExecutionPlan, Flow, FlowNode, Service, Tier};
pub use generator::{generate_app, GeneratorConfig};
pub use scenario::{
    EpisodeLabel, FaultEpisode, FlashCrowd, RetryPolicy, Scenario, ScenarioKind, ScenarioParams,
    Schedule, ScheduledTrace, TenantSpec, TrafficShape,
};
pub use simulator::{GroundTruth, SimConfig, SimulatedTrace, Simulator};
