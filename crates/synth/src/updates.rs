//! Live service updates (§6.4, Figure 6).
//!
//! The paper rolls four updates onto Synthetic-1024 to compare model
//! robustness under topology change:
//!
//! * **A** — increase the average processing time of one third-level
//!   service by 10×,
//! * **B** — remove that service from the system,
//! * **C** — add a service on the second level,
//! * **D** — add three chains of three services each in the middle of
//!   the dependency graph.

use crate::config::{App, ExecutionPlan, FlowNode, Pod, Service, Tier};
use crate::kernels::{Kernel, KernelKind};

/// Outcome of an update, naming the services it touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Human-readable description.
    pub description: String,
    /// Services added, removed, or modified.
    pub services: Vec<String>,
}

fn flow_node_depth(app: &App, flow: usize, node: usize) -> usize {
    let f = &app.flows[flow];
    let mut d = 0;
    let mut cur = node;
    'outer: loop {
        for (i, n) in f.nodes.iter().enumerate() {
            if n.children.contains(&cur) {
                cur = i;
                d += 1;
                continue 'outer;
            }
        }
        return d;
    }
}

/// Update A: multiply the processing-time kernels of one service on the
/// third level (RPC depth 2) of the main flow by `factor` (paper: 10×).
///
/// Returns the modified service's name.
///
/// # Panics
///
/// Panics if the main flow has no node at depth ≥ 2.
pub fn update_a_slow_service(app: &mut App, factor: f64) -> UpdateReport {
    let flow = 0;
    let target_node = (0..app.flows[flow].nodes.len())
        .find(|&n| flow_node_depth(app, flow, n) == 2)
        .expect("main flow must reach depth 2");
    let svc = app.flows[flow].nodes[target_node].service;
    let svc_name = app.services[svc].name.clone();
    for f in &mut app.flows {
        for n in &mut f.nodes {
            if n.service == svc {
                n.pre_kernel = Kernel::with_median(
                    n.pre_kernel.kind,
                    n.pre_kernel.median_us() * factor,
                    n.pre_kernel.sigma,
                );
                n.post_kernel = Kernel::with_median(
                    n.post_kernel.kind,
                    n.post_kernel.median_us() * factor,
                    n.post_kernel.sigma,
                );
            }
        }
    }
    UpdateReport {
        description: format!("update A: slowed service {svc_name} by {factor}x"),
        services: vec![svc_name],
    }
}

/// Update B: remove a service's invocation sites from every flow. Each
/// removed node's children are spliced onto its parent (preserving
/// topological order); subtrees rooted at a removed *root* are left
/// untouched.
pub fn update_b_remove_service(app: &mut App, service_name: &str) -> UpdateReport {
    let Some(svc) = app.services.iter().position(|s| s.name == service_name) else {
        return UpdateReport {
            description: format!("update B: service {service_name} not found"),
            services: vec![],
        };
    };
    for f in &mut app.flows {
        // Splice out matching non-root nodes repeatedly until none left.
        while let Some(victim) = (1..f.nodes.len()).find(|&i| f.nodes[i].service == svc) {
            let parent = f
                .nodes
                .iter()
                .position(|n| n.children.contains(&victim))
                .expect("non-root node has a parent");
            let grandchildren = f.nodes[victim].children.clone();
            // Replace the victim's slot in the parent with its children.
            let pos = f.nodes[parent]
                .children
                .iter()
                .position(|&c| c == victim)
                .expect("victim is a child of parent");
            f.nodes[parent].children.remove(pos);
            f.nodes[parent].children.extend(grandchildren);
            // Remove the node and reindex.
            f.nodes.remove(victim);
            for n in &mut f.nodes {
                for c in n.children.iter_mut() {
                    if *c > victim {
                        *c -= 1;
                    }
                }
            }
            // Rebuild simple sequential plans (indices changed).
            for n in &mut f.nodes {
                n.exec = ExecutionPlan::sequential(n.children.len());
            }
        }
    }
    UpdateReport {
        description: format!("update B: removed service {service_name}"),
        services: vec![service_name.to_string()],
    }
}

fn add_service(app: &mut App, name: &str, tier: Tier) -> usize {
    let node = app.services.len() % app.nodes.len().max(1);
    app.services.push(Service {
        name: name.to_string(),
        tier,
        pods: vec![
            Pod {
                name: format!("{name}-0"),
                node,
            },
            Pod {
                name: format!("{name}-1"),
                node: (node + 1) % app.nodes.len().max(1),
            },
        ],
    });
    app.services.len() - 1
}

fn new_node(service: usize, op: &str) -> FlowNode {
    FlowNode {
        service,
        op_name: op.to_string(),
        children: Vec::new(),
        exec: ExecutionPlan::default(),
        pre_kernel: Kernel::with_median(KernelKind::Cpu, 300.0, 0.5),
        post_kernel: Kernel::with_median(KernelKind::Cpu, 100.0, 0.5),
        timeout_us: 2_000_000,
        base_error_rate: 0.001,
    }
}

/// Update C: add one new service invoked from the second level (a child
/// of the main flow's root).
pub fn update_c_add_service(app: &mut App) -> UpdateReport {
    let svc = add_service(app, "update-c-service", Tier::Middleware);
    let f = &mut app.flows[0];
    let idx = f.nodes.len();
    f.nodes.push(new_node(svc, "HandleUpdateC"));
    f.nodes[0].children.push(idx);
    let n_children = f.nodes[0].children.len();
    f.nodes[0].exec = ExecutionPlan::sequential(n_children);
    UpdateReport {
        description: "update C: added update-c-service at level 2".into(),
        services: vec!["update-c-service".into()],
    }
}

/// Update D: add three chains of three services each, attached under
/// distinct mid-depth nodes of the main flow.
pub fn update_d_add_chains(app: &mut App) -> UpdateReport {
    let mut added = Vec::new();
    for chain in 0..3 {
        let svcs: Vec<usize> = (0..3)
            .map(|k| {
                let name = format!("update-d-{chain}-{k}");
                added.push(name.clone());
                add_service(app, &name, Tier::Backend)
            })
            .collect();
        let f = &mut app.flows[0];
        // Attach under a mid node: pick the chain-th child of the root
        // when available, else the root.
        let anchor = *f.nodes[0].children.get(chain).unwrap_or(&0);
        let mut parent = anchor;
        for (k, &svc) in svcs.iter().enumerate() {
            let idx = f.nodes.len();
            f.nodes.push(new_node(svc, &format!("ChainStep{k}")));
            f.nodes[parent].children.push(idx);
            let n_children = f.nodes[parent].children.len();
            f.nodes[parent].exec = ExecutionPlan::sequential(n_children);
            parent = idx;
        }
    }
    UpdateReport {
        description: "update D: added three 3-service chains".into(),
        services: added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::synthetic;

    #[test]
    fn update_a_slows_one_service() {
        let mut app = synthetic(64, 1);
        let before = app.clone();
        let report = update_a_slow_service(&mut app, 10.0);
        assert_eq!(report.services.len(), 1);
        app.validate().unwrap();
        // Some kernel median grew ~10x.
        let svc = app
            .services
            .iter()
            .position(|s| s.name == report.services[0])
            .unwrap();
        let old = before.flows[0]
            .nodes
            .iter()
            .find(|n| n.service == svc)
            .unwrap()
            .pre_kernel
            .median_us();
        let new = app.flows[0]
            .nodes
            .iter()
            .find(|n| n.service == svc)
            .unwrap()
            .pre_kernel
            .median_us();
        assert!((new / old - 10.0).abs() < 1e-6);
    }

    #[test]
    fn update_b_removes_all_sites() {
        let mut app = synthetic(64, 1);
        let report = update_a_slow_service(&mut app, 10.0);
        let name = report.services[0].clone();
        let before_rpcs = app.num_rpcs();
        update_b_remove_service(&mut app, &name);
        app.validate().unwrap();
        let svc = app.services.iter().position(|s| s.name == name).unwrap();
        for f in &app.flows {
            assert!(f.nodes.iter().skip(1).all(|n| n.service != svc));
        }
        assert!(app.num_rpcs() < before_rpcs);
    }

    #[test]
    fn update_b_unknown_service_is_noop() {
        let mut app = synthetic(16, 1);
        let before = app.clone();
        let report = update_b_remove_service(&mut app, "no-such-service");
        assert!(report.services.is_empty());
        assert_eq!(app, before);
    }

    #[test]
    fn update_c_adds_level2_service() {
        let mut app = synthetic(64, 1);
        let before_services = app.num_services();
        let before_rpcs = app.num_rpcs();
        update_c_add_service(&mut app);
        app.validate().unwrap();
        assert_eq!(app.num_services(), before_services + 1);
        assert_eq!(app.num_rpcs(), before_rpcs + 1);
        // New node is a child of the main flow's root.
        let f = &app.flows[0];
        let last = f.nodes.len() - 1;
        assert!(f.nodes[0].children.contains(&last));
    }

    #[test]
    fn update_d_adds_nine_services() {
        let mut app = synthetic(64, 1);
        let before_services = app.num_services();
        let before_rpcs = app.num_rpcs();
        let report = update_d_add_chains(&mut app);
        app.validate().unwrap();
        assert_eq!(report.services.len(), 9);
        assert_eq!(app.num_services(), before_services + 9);
        assert_eq!(app.num_rpcs(), before_rpcs + 9);
    }

    #[test]
    fn full_update_sequence_keeps_app_valid() {
        let mut app = synthetic(256, 2);
        let r = update_a_slow_service(&mut app, 10.0);
        app.validate().unwrap();
        update_b_remove_service(&mut app, &r.services[0]);
        app.validate().unwrap();
        update_c_add_service(&mut app);
        app.validate().unwrap();
        update_d_add_chains(&mut app);
        app.validate().unwrap();
    }
}
