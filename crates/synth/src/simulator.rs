//! Discrete-event request simulation.
//!
//! Replaces the paper's deployed gRPC services: executes one request
//! through a flow's call tree, honouring execution plans (sequential and
//! parallel stages, asynchronous fire-and-forget children), sampling
//! local-work kernels under any active fault plan, adding network
//! latency, propagating errors, and enforcing client-side timeouts. The
//! output is an OpenTelemetry-shaped span set identical in structure to
//! what the paper's collectors would gather, plus the injection-derived
//! ground truth for the trace.

use std::collections::BTreeSet;

use rand::Rng;

use sleuth_trace::{Span, SpanKind, StatusCode, Trace, TraceId};

use crate::chaos::FaultPlan;
use crate::config::{App, Flow};
use crate::kernels::lognormal_us;

/// Simulator tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Median one-way network hop latency, µs.
    pub network_median_us: f64,
    /// Log-normal sigma of network latency.
    pub network_sigma: f64,
    /// Probability a parent reports an error when a synchronous child
    /// failed.
    pub error_propagation: f64,
    /// Median enqueue cost of an asynchronous publish, µs.
    pub async_enqueue_median_us: f64,
    /// Median queueing delay before an async consumer starts, µs.
    pub async_queue_delay_us: f64,
    /// Kernel slow-down below this factor is treated as background noise
    /// and not recorded as ground truth.
    pub affected_slowdown_threshold: f64,
    /// Extra network delay below this many µs is treated as noise.
    pub affected_delay_threshold_us: u64,
    /// A faulted instance enters the ground truth only if the time it
    /// added is at least this fraction of the trace's total duration
    /// (or it caused an error). This implements the paper's root-cause
    /// definition (§3.1): instances whose restoration would prevent the
    /// SLO violation — negligible perturbations are not root causes.
    pub ground_truth_min_fraction: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            network_median_us: 150.0,
            network_sigma: 0.25,
            error_propagation: 0.9,
            async_enqueue_median_us: 80.0,
            async_queue_delay_us: 500.0,
            affected_slowdown_threshold: 1.5,
            affected_delay_threshold_us: 5_000,
            ground_truth_min_fraction: 0.05,
        }
    }
}

/// The injected instances that actually perturbed a simulated trace —
/// the evaluation ground truth (§6.1.4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Root-cause services.
    pub services: BTreeSet<String>,
    /// Root-cause pods.
    pub pods: BTreeSet<String>,
    /// Root-cause cluster nodes.
    pub nodes: BTreeSet<String>,
}

impl GroundTruth {
    /// Whether no instance perturbed the trace.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    fn record(&mut self, app: &App, service: usize, pod: usize) {
        let svc = &app.services[service];
        self.services.insert(svc.name.clone());
        self.pods.insert(svc.pods[pod].name.clone());
        self.nodes.insert(app.nodes[svc.pods[pod].node].clone());
    }
}

/// A simulated request: its trace and ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedTrace {
    /// The assembled trace.
    pub trace: Trace,
    /// Index of the flow that produced it.
    pub flow: usize,
    /// Instances whose faults perturbed it (empty for clean traces).
    pub ground_truth: GroundTruth,
}

/// Executes requests against an [`App`].
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    app: &'a App,
    cfg: SimConfig,
}

struct Ctx<'p> {
    plan: &'p FaultPlan,
    trace_id: TraceId,
    next_span_id: u64,
    spans: Vec<Span>,
    /// Extra synchronous-path time each faulted instance added, µs.
    added_us: std::collections::BTreeMap<(usize, usize), f64>,
    /// Instances whose fault injection produced an error.
    errored: std::collections::BTreeSet<(usize, usize)>,
    /// Depth of fire-and-forget subtrees we are inside (contributions
    /// there never reach the root request, so they are not root causes
    /// for it).
    async_depth: usize,
}

impl<'a> Simulator<'a> {
    /// Create a simulator with default tuning.
    pub fn new(app: &'a App) -> Self {
        Simulator {
            app,
            cfg: SimConfig::default(),
        }
    }

    /// Create a simulator with explicit tuning.
    pub fn with_config(app: &'a App, cfg: SimConfig) -> Self {
        Simulator { app, cfg }
    }

    /// The application being simulated.
    pub fn app(&self) -> &App {
        self.app
    }

    /// Pick a flow index weighted by [`Flow::weight`].
    pub fn pick_flow<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.app.flows.iter().map(|f| f.weight).sum();
        let mut x = rng.gen_range(0.0..total);
        for (i, f) in self.app.flows.iter().enumerate() {
            if x < f.weight {
                return i;
            }
            x -= f.weight;
        }
        self.app.flows.len() - 1
    }

    /// Simulate one request through `flow_idx` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `flow_idx` is out of range.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        flow_idx: usize,
        plan: &FaultPlan,
        trace_id: TraceId,
        rng: &mut R,
    ) -> SimulatedTrace {
        let flow = &self.app.flows[flow_idx];
        let mut ctx = Ctx {
            plan,
            trace_id,
            next_span_id: 1,
            spans: Vec::with_capacity(flow.span_count()),
            added_us: std::collections::BTreeMap::new(),
            errored: std::collections::BTreeSet::new(),
            async_depth: 0,
        };
        let (root_end, _) = self.sim_node(flow, 0, 0, None, SpanKind::Server, &mut ctx, rng);
        let trace = Trace::assemble(std::mem::take(&mut ctx.spans))
            .expect("simulator emits well-formed traces");

        // Finalise the ground truth per the paper's root-cause
        // definition: instances whose injected error actually reached
        // the root, or which added a material share of the end-to-end
        // latency.
        let mut gt = GroundTruth::default();
        if trace.is_error() {
            for &(svc, pod) in &ctx.errored {
                if Self::error_reached_root(&trace, svc, self.app) {
                    gt.record(self.app, svc, pod);
                }
            }
        }
        let min_added = root_end as f64 * self.cfg.ground_truth_min_fraction;
        for (&(svc, pod), &added) in &ctx.added_us {
            if added >= min_added {
                gt.record(self.app, svc, pod);
            }
        }
        SimulatedTrace {
            trace,
            flow: flow_idx,
            ground_truth: gt,
        }
    }

    /// Whether an error at `svc` plausibly caused the root's error: some
    /// span of `svc` is errored and every ancestor up to the root is
    /// errored too (an unbroken propagation chain).
    fn error_reached_root(trace: &Trace, svc: usize, app: &App) -> bool {
        let name = &app.services[svc].name;
        'spans: for (i, s) in trace.iter() {
            if &s.service != name || !s.is_error() {
                continue;
            }
            let mut cur = i;
            while let Some(p) = trace.parent(cur) {
                if !trace.span(p).is_error() {
                    continue 'spans;
                }
                cur = p;
            }
            return true;
        }
        false
    }

    fn net_hop_us<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        lognormal_us(self.cfg.network_median_us.ln(), self.cfg.network_sigma, rng)
    }

    /// Simulate the server-side execution of `node`, returning
    /// `(end_us, errored)`. Spans for this node and its whole subtree are
    /// appended to `ctx`.
    #[allow(clippy::too_many_arguments)]
    fn sim_node<R: Rng + ?Sized>(
        &self,
        flow: &Flow,
        node_idx: usize,
        start_us: u64,
        parent_span: Option<u64>,
        kind: SpanKind,
        ctx: &mut Ctx<'_>,
        rng: &mut R,
    ) -> (u64, bool) {
        let node = &flow.nodes[node_idx];
        let svc_idx = node.service;
        let svc = &self.app.services[svc_idx];
        let pod_idx = rng.gen_range(0..svc.pods.len());
        let pod = &svc.pods[pod_idx];

        let span_id = ctx.next_span_id;
        ctx.next_span_id += 1;

        let mut t = start_us;

        // Pre-stage local work. The healthy service time is sampled and
        // the fault multiplier applied on top, so the *added* time is
        // known exactly for ground-truth accounting.
        let pre_slow = ctx
            .plan
            .slowdown(self.app, svc_idx, pod_idx, node.pre_kernel.kind);
        let pre_base = node.pre_kernel.sample_us(1.0, rng);
        let pre_actual = ((pre_base as f64) * pre_slow).round().max(1.0) as u64;
        if pre_slow >= self.cfg.affected_slowdown_threshold && ctx.async_depth == 0 {
            *ctx.added_us.entry((svc_idx, pod_idx)).or_default() += (pre_actual - pre_base) as f64;
        }
        t += pre_actual;

        // Fire-and-forget async children: enqueue cost on the parent,
        // consumer executes independently.
        for &pos in &node.exec.async_children {
            let child = node.children[pos];
            let enqueue = lognormal_us(self.cfg.async_enqueue_median_us.ln(), 0.3, rng);
            let producer_id = ctx.next_span_id;
            ctx.next_span_id += 1;
            ctx.spans.push(
                Span::builder(
                    ctx.trace_id,
                    producer_id,
                    svc.name.clone(),
                    flow.nodes[child].op_name.clone(),
                )
                .parent(span_id)
                .kind(SpanKind::Producer)
                .time(t, t + enqueue)
                .status(StatusCode::Ok)
                .placement(pod.name.clone(), self.app.nodes[pod.node].clone())
                .build(),
            );
            let queue_delay = lognormal_us(self.cfg.async_queue_delay_us.ln(), 0.5, rng);
            let consumer_start = t + enqueue + queue_delay;
            ctx.async_depth += 1;
            let _ = self.sim_node(
                flow,
                child,
                consumer_start,
                Some(producer_id),
                SpanKind::Consumer,
                ctx,
                rng,
            );
            ctx.async_depth -= 1;
            t += enqueue;
        }

        // Synchronous stages.
        let mut any_child_error = false;
        for stage in &node.exec.stages {
            let stage_start = t;
            let mut stage_end = t;
            for &pos in stage {
                let child = node.children[pos];
                let child_node = &flow.nodes[child];
                let callee_svc = child_node.service;
                // Peek the callee pod here so client-side network faults
                // can target the instance the request actually reaches.
                let callee_pod = rng.gen_range(0..self.app.services[callee_svc].pods.len());

                let net_fault = ctx.plan.network_delay_us(self.app, callee_svc, callee_pod);
                if net_fault >= self.cfg.affected_delay_threshold_us && ctx.async_depth == 0 {
                    *ctx.added_us.entry((callee_svc, callee_pod)).or_default() +=
                        2.0 * net_fault as f64;
                }
                let net_out = self.net_hop_us(rng) + net_fault;
                let net_back = self.net_hop_us(rng) + net_fault;

                let client_id = ctx.next_span_id;
                ctx.next_span_id += 1;

                let child_start = stage_start + net_out;
                let (child_end, child_err) = self.sim_node_with_pod(
                    flow,
                    child,
                    child_start,
                    Some(client_id),
                    SpanKind::Server,
                    callee_pod,
                    ctx,
                    rng,
                );

                let response_at = child_end + net_back;
                let full_wait = response_at - stage_start;
                let (client_end, client_err) = if full_wait > child_node.timeout_us {
                    (stage_start + child_node.timeout_us, true)
                } else {
                    (response_at, child_err)
                };
                ctx.spans.push(
                    Span::builder(
                        ctx.trace_id,
                        client_id,
                        svc.name.clone(),
                        child_node.op_name.clone(),
                    )
                    .parent(span_id)
                    .kind(SpanKind::Client)
                    .time(stage_start, client_end)
                    .status(if client_err {
                        StatusCode::Error
                    } else {
                        StatusCode::Ok
                    })
                    .placement(pod.name.clone(), self.app.nodes[pod.node].clone())
                    .build(),
                );
                any_child_error |= client_err;
                stage_end = stage_end.max(client_end);
            }
            t = stage_end;
        }

        // Post-stage local work (response assembly).
        let post_slow = ctx
            .plan
            .slowdown(self.app, svc_idx, pod_idx, node.post_kernel.kind);
        let post_base = node.post_kernel.sample_us(1.0, rng);
        let post_actual = ((post_base as f64) * post_slow).round().max(1.0) as u64;
        if post_slow >= self.cfg.affected_slowdown_threshold && ctx.async_depth == 0 {
            *ctx.added_us.entry((svc_idx, pod_idx)).or_default() +=
                (post_actual - post_base) as f64;
        }
        t += post_actual;

        // Error status: own (exclusive) errors plus propagation.
        let inject_p = ctx.plan.error_probability(self.app, svc_idx, pod_idx);
        let own_error = if inject_p > 0.0 && rng.gen_bool(inject_p) {
            if ctx.async_depth == 0 {
                ctx.errored.insert((svc_idx, pod_idx));
            }
            true
        } else {
            node.base_error_rate > 0.0 && rng.gen_bool(node.base_error_rate)
        };
        let propagated = any_child_error && rng.gen_bool(self.cfg.error_propagation);
        let errored = own_error || propagated;

        ctx.spans.push(
            Span::builder(
                ctx.trace_id,
                span_id,
                svc.name.clone(),
                node.op_name.clone(),
            )
            .kind(kind)
            .time(start_us, t)
            .status(if errored {
                StatusCode::Error
            } else {
                StatusCode::Ok
            })
            .placement(pod.name.clone(), self.app.nodes[pod.node].clone())
            .build(),
        );
        // Root has no parent; set parent for non-roots.
        if let Some(p) = parent_span {
            let s = ctx.spans.last_mut().expect("just pushed");
            s.parent_span_id = Some(p);
        }
        (t, errored)
    }

    /// Variant of [`Simulator::sim_node`] with the callee pod chosen by
    /// the caller (needed so network faults can be attributed before the
    /// callee executes).
    #[allow(clippy::too_many_arguments)]
    fn sim_node_with_pod<R: Rng + ?Sized>(
        &self,
        flow: &Flow,
        node_idx: usize,
        start_us: u64,
        parent_span: Option<u64>,
        kind: SpanKind,
        _pod_idx: usize,
        ctx: &mut Ctx<'_>,
        rng: &mut R,
    ) -> (u64, bool) {
        // The pod chosen by the caller is only used for network-fault
        // attribution; the node re-samples its own pod for kernel faults,
        // which is equivalent in distribution because placement is
        // uniform.
        self.sim_node(flow, node_idx, start_us, parent_span, kind, ctx, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosEngine, Fault, FaultKind, FaultTarget};
    use crate::generator::{generate_app, GeneratorConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn app16() -> App {
        generate_app(&GeneratorConfig::synthetic(16), 1)
    }

    #[test]
    fn healthy_trace_has_expected_span_count() {
        let app = app16();
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let st = sim.simulate(0, &FaultPlan::healthy(), 1, &mut rng);
        assert_eq!(st.trace.len(), app.flows[0].span_count());
        assert!(st.ground_truth.is_empty());
        assert_eq!(st.flow, 0);
    }

    #[test]
    fn spans_form_valid_tree_with_client_server_pairs() {
        let app = app16();
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let st = sim.simulate(0, &FaultPlan::healthy(), 7, &mut rng);
        let t = &st.trace;
        let servers = t
            .spans()
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Server | SpanKind::Consumer))
            .count();
        let clients = t
            .spans()
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Client | SpanKind::Producer))
            .count();
        assert_eq!(servers, app.flows[0].len());
        assert_eq!(clients, app.flows[0].len() - 1);
        // Children fit inside parents for synchronous spans.
        for (i, s) in t.iter() {
            if let Some(p) = t.parent(i) {
                let ps = t.span(p);
                if s.kind != SpanKind::Consumer {
                    assert!(s.start_us >= ps.start_us);
                    assert!(s.end_us <= ps.end_us, "span {} escapes parent", s.name);
                }
            }
        }
    }

    #[test]
    fn cpu_fault_slows_trace_and_records_ground_truth() {
        let app = app16();
        let sim = Simulator::new(&app);
        // Fault every pod of a service that actually serves flow 0, so
        // pod sampling cannot dodge it.
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .flat_map(|p| {
                    crate::kernels::KernelKind::ALL
                        .iter()
                        .map(move |_| p)
                        .take(1)
                })
                .map(|p| Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 40.0,
                })
                .collect(),
        };
        let mut healthy_tot = 0u64;
        let mut faulty_tot = 0u64;
        let mut gt_seen = false;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 0..30 {
            let h = sim.simulate(0, &FaultPlan::healthy(), i, &mut rng);
            let f = sim.simulate(0, &plan, 1000 + i, &mut rng);
            healthy_tot += h.trace.total_duration_us();
            faulty_tot += f.trace.total_duration_us();
            if f.ground_truth.services.contains(&app.services[victim].name) {
                gt_seen = true;
            }
        }
        // Service 1 appears in flow 0 for this seed; traces should slow.
        assert!(gt_seen, "ground truth never recorded victim service");
        assert!(
            faulty_tot > healthy_tot,
            "faulty {faulty_tot} <= healthy {healthy_tot}"
        );
    }

    #[test]
    fn error_injection_produces_error_traces() {
        let app = app16();
        let sim = Simulator::new(&app);
        // Inject errors at the root service so propagation is certain.
        let root_svc = app.flows[0].nodes[0].service;
        let plan = FaultPlan {
            faults: (0..app.services[root_svc].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::ErrorInjection,
                    target: FaultTarget::Pod {
                        service: root_svc,
                        pod: p,
                    },
                    severity: 1.0,
                })
                .collect(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let st = sim.simulate(0, &plan, 1, &mut rng);
        assert!(st.trace.is_error());
        assert!(st
            .ground_truth
            .services
            .contains(&app.services[root_svc].name));
    }

    #[test]
    fn determinism_per_seed() {
        let app = app16();
        let sim = Simulator::new(&app);
        let mut r1 = ChaCha8Rng::seed_from_u64(11);
        let mut r2 = ChaCha8Rng::seed_from_u64(11);
        let a = sim.simulate(0, &FaultPlan::healthy(), 1, &mut r1);
        let b = sim.simulate(0, &FaultPlan::healthy(), 1, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn pick_flow_respects_weights() {
        let app = generate_app(&GeneratorConfig::synthetic(64), 2);
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = vec![0usize; app.flows.len()];
        for _ in 0..3000 {
            counts[sim.pick_flow(&mut rng)] += 1;
        }
        // Main flow (weight 1.0) should dominate the 0.3-weight aux flows.
        assert!(counts[0] > counts[1]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn chaos_engine_plans_produce_anomalies() {
        let app = app16();
        let sim = Simulator::new(&app);
        let engine = ChaosEngine::default();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut any_gt = false;
        for i in 0..50 {
            let plan = engine.sample_nonempty_plan(&app, &mut rng);
            let st = sim.simulate(0, &plan, i, &mut rng);
            any_gt |= !st.ground_truth.is_empty();
        }
        assert!(any_gt, "no trace was ever perturbed");
    }

    #[test]
    fn timeouts_cap_client_spans() {
        let mut app = app16();
        // Tighten all timeouts drastically and slow everything down.
        for f in &mut app.flows {
            for n in &mut f.nodes {
                n.timeout_us = 500;
            }
        }
        let plan = FaultPlan {
            faults: (0..app.services.len())
                .flat_map(|s| {
                    (0..app.services[s].pods.len()).map(move |p| Fault {
                        kind: FaultKind::CpuStress,
                        target: FaultTarget::Pod { service: s, pod: p },
                        severity: 100.0,
                    })
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let st = sim.simulate(0, &plan, 1, &mut rng);
        let any_timeout = st
            .trace
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::Client && s.is_error());
        if app.flows[0].len() > 1 {
            assert!(any_timeout, "expected timeout errors");
        }
    }
}
