//! Random application generation (§5.1).
//!
//! Reproduces the paper's pipeline: allocate services to tiers, assign
//! RPCs with realistic names, build a random RPC-dependency tree per
//! operation flow with depth/out-degree control and tier-aware node
//! placement (frontend RPCs shallow, leaf RPCs deep), attach random
//! execution graphs (sequential/parallel stages, async children) and
//! local workload kernels.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{App, ExecutionPlan, Flow, FlowNode, Pod, Service, Tier};
use crate::kernels::{Kernel, KernelKind};

/// Tuning knobs for [`generate_app`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Application name.
    pub name: String,
    /// Number of services to allocate.
    pub num_services: usize,
    /// Total RPC invocation sites across all flows.
    pub num_rpcs: usize,
    /// Number of operation flows; the first is the "main" flow holding
    /// most of the RPC budget.
    pub num_flows: usize,
    /// Maximum RPC-tree depth (levels below the root).
    pub max_depth: usize,
    /// Maximum children of one RPC.
    pub max_out_degree: usize,
    /// Probability a child is invoked asynchronously.
    pub async_fraction: f64,
    /// Probability consecutive children share a parallel stage.
    pub parallel_fraction: f64,
    /// Range of kernel median service times, µs (log-uniform).
    pub kernel_median_range: (f64, f64),
    /// Range of kernel log-normal sigmas (uniform).
    pub kernel_sigma_range: (f64, f64),
    /// Replicas per service.
    pub pods_per_service: usize,
    /// Cluster nodes to spread pods over.
    pub num_cluster_nodes: usize,
    /// Baseline per-RPC exclusive error probability.
    pub base_error_rate: f64,
    /// Synchronous RPC timeout, µs.
    pub timeout_us: u64,
}

impl GeneratorConfig {
    /// A configuration scaled like the paper's Synthetic-N benchmarks:
    /// `num_rpcs = n`, `num_services = n / 4`, with Table 1's depth and
    /// fan-out targets.
    pub fn synthetic(n_rpcs: usize) -> Self {
        let (max_depth, max_out) = match n_rpcs {
            0..=16 => (2, 4),
            17..=64 => (3, 7),
            65..=256 => (7, 14),
            _ => (7, 24),
        };
        GeneratorConfig {
            name: format!("synthetic-{n_rpcs}"),
            num_services: (n_rpcs / 4).max(2),
            num_rpcs: n_rpcs,
            num_flows: if n_rpcs <= 16 { 1 } else { 3 },
            max_depth,
            max_out_degree: max_out,
            async_fraction: 0.08,
            parallel_fraction: 0.45,
            kernel_median_range: (40.0, 3_000.0),
            kernel_sigma_range: (0.3, 0.9),
            pods_per_service: 2,
            num_cluster_nodes: ((n_rpcs / 8).clamp(4, 100)).max(1),
            base_error_rate: 0.001,
            timeout_us: 2_000_000,
        }
    }
}

const SERVICE_BASES: &[(&str, Tier)] = &[
    ("api-gateway", Tier::Frontend),
    ("web-frontend", Tier::Frontend),
    ("mobile-bff", Tier::Frontend),
    ("edge-router", Tier::Frontend),
    ("user", Tier::Middleware),
    ("order", Tier::Middleware),
    ("cart", Tier::Middleware),
    ("checkout", Tier::Middleware),
    ("search", Tier::Middleware),
    ("recommend", Tier::Middleware),
    ("social-graph", Tier::Middleware),
    ("timeline", Tier::Middleware),
    ("compose", Tier::Middleware),
    ("notification", Tier::Middleware),
    ("payment", Tier::Backend),
    ("inventory", Tier::Backend),
    ("shipping", Tier::Backend),
    ("catalog", Tier::Backend),
    ("pricing", Tier::Backend),
    ("auth", Tier::Backend),
    ("session", Tier::Backend),
    ("profile", Tier::Backend),
    ("media", Tier::Backend),
    ("geo", Tier::Backend),
    ("rating", Tier::Backend),
    ("analytics", Tier::Backend),
    ("redis-cache", Tier::Leaf),
    ("memcached", Tier::Leaf),
    ("mongodb", Tier::Leaf),
    ("mysql", Tier::Leaf),
    ("postgres", Tier::Leaf),
    ("kafka", Tier::Leaf),
    ("rabbitmq", Tier::Leaf),
    ("blobstore", Tier::Leaf),
];

const MID_VERBS: &[&str] = &[
    "Get", "List", "Create", "Update", "Delete", "Compose", "Check", "Resolve", "Validate", "Fetch",
];
const MID_NOUNS: &[&str] = &[
    "User", "Order", "Cart", "Item", "Post", "Timeline", "Profile", "Price", "Stock", "Session",
    "Review", "Payment", "Media",
];
const LEAF_OPS: &[&str] = &[
    "get", "set", "mget", "query", "insert", "update", "scan", "publish", "consume", "read",
    "write",
];

/// Generate a complete application deterministically from a seed.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero services, RPCs,
/// flows, or cluster nodes).
pub fn generate_app(cfg: &GeneratorConfig, seed: u64) -> App {
    assert!(cfg.num_services >= 2, "need at least two services");
    assert!(
        cfg.num_rpcs >= cfg.num_flows,
        "need at least one RPC per flow"
    );
    assert!(cfg.num_flows >= 1, "need at least one flow");
    assert!(cfg.num_cluster_nodes >= 1, "need at least one cluster node");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let nodes: Vec<String> = (0..cfg.num_cluster_nodes)
        .map(|i| format!("node-{i}"))
        .collect();
    let services = allocate_services(cfg, &nodes, &mut rng);

    // Split the RPC budget: the main flow gets most of it.
    let mut budgets = vec![0usize; cfg.num_flows];
    if cfg.num_flows == 1 {
        budgets[0] = cfg.num_rpcs;
    } else {
        // Auxiliary flows are small so the main flow's trace size tracks
        // the paper's "max spans ≈ 2·RPCs" (Table 1).
        let aux = ((cfg.num_rpcs / 32).max(2)).min(cfg.num_rpcs / cfg.num_flows);
        for b in budgets.iter_mut().skip(1) {
            *b = aux;
        }
        budgets[0] = cfg.num_rpcs - aux * (cfg.num_flows - 1);
    }

    let flows = budgets
        .iter()
        .enumerate()
        .map(|(i, &budget)| generate_flow(cfg, &services, i, budget, &mut rng))
        .collect();

    let app = App {
        name: cfg.name.clone(),
        nodes,
        services,
        flows,
    };
    app.validate().expect("generator must produce valid apps");
    app
}

fn allocate_services<R: Rng>(cfg: &GeneratorConfig, nodes: &[String], rng: &mut R) -> Vec<Service> {
    // Tier quotas: ~8% frontend, 30% middleware, 40% backend, rest leaf,
    // with at least one frontend and one leaf.
    let s = cfg.num_services;
    let n_front = ((s as f64 * 0.08).round() as usize).clamp(1, s - 1);
    let n_mid = ((s as f64 * 0.30).round() as usize).min(s - n_front - 1);
    let n_back = ((s as f64 * 0.40).round() as usize).min(s - n_front - n_mid - 1);
    let n_leaf = s - n_front - n_mid - n_back;

    let mut quotas = vec![
        (Tier::Frontend, n_front),
        (Tier::Middleware, n_mid),
        (Tier::Backend, n_back),
        (Tier::Leaf, n_leaf.max(1)),
    ];

    let mut services = Vec::with_capacity(s);
    for (tier, count) in quotas.drain(..) {
        let bases: Vec<&str> = SERVICE_BASES
            .iter()
            .filter(|(_, t)| *t == tier)
            .map(|(n, _)| *n)
            .collect();
        for k in 0..count {
            let base = bases[k % bases.len()];
            let name = if k < bases.len() {
                base.to_string()
            } else {
                format!("{base}-{}", k / bases.len())
            };
            let pods = (0..cfg.pods_per_service.max(1))
                .map(|p| Pod {
                    name: format!("{name}-{p}"),
                    node: rng.gen_range(0..nodes.len()),
                })
                .collect();
            services.push(Service { name, tier, pods });
        }
    }
    services
}

/// Indices of services in a tier (fallback: any service).
fn tier_services(services: &[Service], tier: Tier) -> Vec<usize> {
    let v: Vec<usize> = services
        .iter()
        .enumerate()
        .filter(|(_, s)| s.tier == tier)
        .map(|(i, _)| i)
        .collect();
    if v.is_empty() {
        (0..services.len()).collect()
    } else {
        v
    }
}

fn tier_for_depth(depth: usize, max_depth: usize) -> Tier {
    if depth == 0 {
        return Tier::Frontend;
    }
    if max_depth <= 1 {
        return Tier::Leaf;
    }
    let q = depth as f64 / max_depth as f64;
    if q < 0.4 {
        Tier::Middleware
    } else if q < 0.8 {
        Tier::Backend
    } else {
        Tier::Leaf
    }
}

fn op_name_for<R: Rng>(services: &[Service], service: usize, depth: usize, rng: &mut R) -> String {
    let svc = &services[service];
    match svc.tier {
        Tier::Frontend => {
            let verbs = ["GET", "POST", "PUT"];
            let paths = [
                "/home",
                "/orders",
                "/cart",
                "/user",
                "/compose",
                "/search",
                "/feed",
                "/checkout",
            ];
            format!(
                "{} {}",
                verbs[rng.gen_range(0..verbs.len())],
                paths[rng.gen_range(0..paths.len())]
            )
        }
        Tier::Leaf => {
            let proto = svc.name.split('-').next().unwrap_or("kv");
            format!("{proto}.{}", LEAF_OPS[rng.gen_range(0..LEAF_OPS.len())])
        }
        _ => {
            let _ = depth;
            format!(
                "{}{}",
                MID_VERBS[rng.gen_range(0..MID_VERBS.len())],
                MID_NOUNS[rng.gen_range(0..MID_NOUNS.len())]
            )
        }
    }
}

fn random_kernel<R: Rng>(cfg: &GeneratorConfig, tier: Tier, rng: &mut R) -> Kernel {
    let (lo, hi) = cfg.kernel_median_range;
    let u: f64 = rng.gen_range(0.0..1.0);
    let mut median = (lo.ln() + u * (hi.ln() - lo.ln())).exp();
    // Leaf stores are fast; middleware orchestration is light.
    if tier == Tier::Leaf {
        median *= 0.3;
    }
    let sigma = rng.gen_range(cfg.kernel_sigma_range.0..=cfg.kernel_sigma_range.1);
    let kind = *[
        KernelKind::Cpu,
        KernelKind::Memory,
        KernelKind::Disk,
        KernelKind::Scheduler,
    ]
    .choose(rng)
    .expect("non-empty");
    Kernel::with_median(kind, median, sigma)
}

fn generate_flow<R: Rng>(
    cfg: &GeneratorConfig,
    services: &[Service],
    flow_idx: usize,
    budget: usize,
    rng: &mut R,
) -> Flow {
    assert!(budget >= 1);
    // Grow a random tree: each new node attaches to an eligible parent
    // (depth < max_depth, fan-out < max_out_degree), preferring parents
    // in shallower tiers to mimic production fan-out shapes.
    let mut depths = vec![0usize];
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut child_count = vec![0usize];
    for _ in 1..budget {
        let eligible: Vec<usize> = (0..depths.len())
            .filter(|&i| depths[i] < cfg.max_depth && child_count[i] < cfg.max_out_degree)
            .collect();
        // Weight parents toward depth (so trees reach the target depth)
        // and toward nodes that already fan out (preferential
        // attachment — production RPC graphs have pronounced hubs,
        // matching Table 1's large max out-degrees).
        let parent = *eligible
            .choose_weighted(rng, |&i| {
                1.0 + depths[i] as f64 + 1.5 * child_count[i] as f64
            })
            .unwrap_or_else(|_| {
                panic!("tree generation ran out of eligible parents (budget {budget})")
            });
        depths.push(depths[parent] + 1);
        parents.push(Some(parent));
        child_count.push(0);
        child_count[parent] += 1;
    }

    // Assign services to nodes by tier affinity.
    let mut node_service = Vec::with_capacity(budget);
    for &d in &depths {
        let tier = tier_for_depth(d, cfg.max_depth);
        let pool = tier_services(services, tier);
        node_service.push(pool[rng.gen_range(0..pool.len())]);
    }

    // Build children lists (topological order holds: parents precede
    // children by construction).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); budget];
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = *p {
            children[p].push(i);
        }
    }

    let mut nodes = Vec::with_capacity(budget);
    for i in 0..budget {
        let svc = node_service[i];
        let tier = services[svc].tier;
        let exec = random_execution_plan(cfg, children[i].len(), rng);
        nodes.push(FlowNode {
            service: svc,
            op_name: op_name_for(services, svc, depths[i], rng),
            children: children[i].clone(),
            exec,
            pre_kernel: random_kernel(cfg, tier, rng),
            post_kernel: random_kernel(cfg, tier, rng),
            timeout_us: cfg.timeout_us,
            base_error_rate: cfg.base_error_rate,
        });
    }

    let name = if flow_idx == 0 {
        nodes[0].op_name.clone()
    } else {
        format!("{}#{}", nodes[0].op_name, flow_idx)
    };
    Flow {
        name,
        weight: if flow_idx == 0 { 1.0 } else { 0.3 },
        nodes,
    }
}

fn random_execution_plan<R: Rng>(
    cfg: &GeneratorConfig,
    num_children: usize,
    rng: &mut R,
) -> ExecutionPlan {
    let mut stages: Vec<Vec<usize>> = Vec::new();
    let mut async_children = Vec::new();
    for c in 0..num_children {
        if rng.gen_bool(cfg.async_fraction) {
            async_children.push(c);
            continue;
        }
        let join = !stages.is_empty() && rng.gen_bool(cfg.parallel_fraction);
        if join {
            stages.last_mut().expect("non-empty").push(c);
        } else {
            stages.push(vec![c]);
        }
    }
    ExecutionPlan {
        stages,
        async_children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_app_is_valid_and_sized() {
        for n in [16usize, 64, 256] {
            let cfg = GeneratorConfig::synthetic(n);
            let app = generate_app(&cfg, 1);
            app.validate().unwrap();
            assert_eq!(app.num_rpcs(), n, "n={n}");
            assert_eq!(app.num_services(), (n / 4).max(2));
            assert!(app.max_out_degree() <= cfg.max_out_degree);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::synthetic(64);
        let a = generate_app(&cfg, 9);
        let b = generate_app(&cfg, 9);
        assert_eq!(a, b);
        let c = generate_app(&cfg, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn depth_respects_cap_and_grows_with_scale() {
        let small = generate_app(&GeneratorConfig::synthetic(16), 3);
        let large = generate_app(&GeneratorConfig::synthetic(256), 3);
        let small_depth = small.flows.iter().map(|f| f.depth()).max().unwrap();
        let large_depth = large.flows.iter().map(|f| f.depth()).max().unwrap();
        assert!(small_depth <= 2);
        assert!(large_depth <= 7);
        assert!(large_depth > small_depth);
    }

    #[test]
    fn root_is_frontend_service() {
        let app = generate_app(&GeneratorConfig::synthetic(64), 5);
        for f in &app.flows {
            let root_svc = &app.services[f.nodes[0].service];
            assert_eq!(root_svc.tier, Tier::Frontend);
        }
    }

    #[test]
    fn tiers_are_all_represented_at_scale() {
        let app = generate_app(&GeneratorConfig::synthetic(256), 2);
        for tier in Tier::ALL {
            assert!(
                app.services.iter().any(|s| s.tier == tier),
                "missing {tier:?}"
            );
        }
    }

    #[test]
    fn main_flow_holds_most_rpcs() {
        let app = generate_app(&GeneratorConfig::synthetic(256), 4);
        let main = app.flows[0].len();
        for f in &app.flows[1..] {
            assert!(f.len() < main);
        }
    }

    #[test]
    fn pods_and_nodes_allocated() {
        let app = generate_app(&GeneratorConfig::synthetic(64), 8);
        for s in &app.services {
            assert_eq!(s.pods.len(), 2);
            for p in &s.pods {
                assert!(p.node < app.nodes.len());
            }
        }
    }

    #[test]
    fn some_parallelism_and_async_generated() {
        let app = generate_app(&GeneratorConfig::synthetic(256), 11);
        let any_parallel = app
            .flows
            .iter()
            .flat_map(|f| &f.nodes)
            .any(|n| n.exec.stages.iter().any(|s| s.len() > 1));
        let any_async = app
            .flows
            .iter()
            .flat_map(|f| &f.nodes)
            .any(|n| !n.exec.async_children.is_empty());
        assert!(any_parallel, "no parallel stages generated");
        assert!(any_async, "no async children generated");
    }
}
