//! The application model (§5.1's configuration file).
//!
//! An [`App`] is everything the code generator in the paper would turn
//! into deployable services: the service inventory with tier labels and
//! pod placements, and per operation flow an RPC call tree whose nodes
//! carry execution plans (ordering/parallelism of child RPCs) and local
//! workload kernels.

use serde::{Deserialize, Serialize};

use crate::kernels::Kernel;

/// Architectural tier of a service (§5.1.1) — controls where its RPCs
/// sit in generated dependency graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Entry services (API gateways, web frontends).
    Frontend,
    /// Business-logic orchestrators.
    Middleware,
    /// Data and domain services.
    Backend,
    /// Leaf dependencies (caches, databases, queues).
    Leaf,
}

impl Tier {
    /// All tiers, shallow to deep.
    pub const ALL: [Tier; 4] = [Tier::Frontend, Tier::Middleware, Tier::Backend, Tier::Leaf];
}

/// A replica of a service scheduled on a cluster node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pod {
    /// Pod name (e.g. `cart-1`).
    pub name: String,
    /// Index into [`App::nodes`].
    pub node: usize,
}

/// One microservice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    /// Service name.
    pub name: String,
    /// Architectural tier.
    pub tier: Tier,
    /// Replicas and their placement.
    pub pods: Vec<Pod>,
}

/// Ordering of the child RPCs of one flow node (§5.1.3).
///
/// Children in the same stage are invoked in parallel; stages run
/// sequentially, each separated by local work. Positions index into
/// [`FlowNode::children`]. Asynchronous children are listed separately:
/// they are fired at the start of the first stage and never awaited.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ExecutionPlan {
    /// Sequential stages of parallel child invocations.
    pub stages: Vec<Vec<usize>>,
    /// Fire-and-forget children (producer/consumer messaging).
    pub async_children: Vec<usize>,
}

impl ExecutionPlan {
    /// A plan invoking every child sequentially, one stage each.
    pub fn sequential(num_children: usize) -> Self {
        ExecutionPlan {
            stages: (0..num_children).map(|c| vec![c]).collect(),
            async_children: Vec::new(),
        }
    }

    /// A plan invoking every child in one parallel stage.
    pub fn parallel(num_children: usize) -> Self {
        ExecutionPlan {
            stages: if num_children == 0 {
                Vec::new()
            } else {
                vec![(0..num_children).collect()]
            },
            async_children: Vec::new(),
        }
    }

    /// Every child position covered by the plan, in plan order.
    pub fn all_positions(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.stages.iter().flatten().copied().collect();
        v.extend(&self.async_children);
        v
    }

    /// Validate the plan covers positions `0..num_children` exactly once.
    pub fn validate(&self, num_children: usize) -> Result<(), String> {
        let mut seen = vec![false; num_children];
        for &p in self.all_positions().iter() {
            if p >= num_children {
                return Err(format!("position {p} out of range {num_children}"));
            }
            if seen[p] {
                return Err(format!("position {p} covered twice"));
            }
            seen[p] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("position {missing} not covered"));
        }
        Ok(())
    }
}

/// One RPC invocation site in a flow's call tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowNode {
    /// Index into [`App::services`] of the service handling this RPC.
    pub service: usize,
    /// Operation name of the RPC.
    pub op_name: String,
    /// Child flow-node indices (into [`Flow::nodes`]).
    pub children: Vec<usize>,
    /// Ordering/parallelism of the children.
    pub exec: ExecutionPlan,
    /// Local work before the first stage.
    pub pre_kernel: Kernel,
    /// Local work after the last stage (response assembly).
    pub post_kernel: Kernel,
    /// Synchronous callers abandon this RPC after this many µs.
    pub timeout_us: u64,
    /// Baseline probability this RPC fails of its own accord.
    pub base_error_rate: f64,
}

/// One operation flow (request type) of the application (§5.1.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Flow name (e.g. `POST /orders`).
    pub name: String,
    /// Relative traffic weight across flows.
    pub weight: f64,
    /// Call tree; index 0 is the root.
    pub nodes: Vec<FlowNode>,
}

impl Flow {
    /// Depth of the call tree (root = 0).
    pub fn depth(&self) -> usize {
        fn rec(f: &Flow, n: usize) -> usize {
            f.nodes[n]
                .children
                .iter()
                .map(|&c| 1 + rec(f, c))
                .max()
                .unwrap_or(0)
        }
        rec(self, 0)
    }

    /// Number of RPC invocation sites.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the flow has no nodes (invalid; flows always have a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Maximum fan-out of any node.
    pub fn max_out_degree(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Number of spans a request through this flow produces
    /// (one server span per node + one client span per non-root node).
    pub fn span_count(&self) -> usize {
        2 * self.nodes.len() - 1
    }

    /// Validate tree structure and execution plans.
    pub fn validate(&self, num_services: usize) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("flow has no nodes".into());
        }
        let mut seen_child = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.service >= num_services {
                return Err(format!("node {i}: service {} out of range", n.service));
            }
            for &c in &n.children {
                if c >= self.nodes.len() {
                    return Err(format!("node {i}: child {c} out of range"));
                }
                if c <= i {
                    return Err(format!("node {i}: child {c} not in topological order"));
                }
                if seen_child[c] {
                    return Err(format!("node {c} has two parents"));
                }
                seen_child[c] = true;
            }
            n.exec
                .validate(n.children.len())
                .map_err(|e| format!("node {i}: {e}"))?;
        }
        for (c, &seen) in seen_child.iter().enumerate().skip(1) {
            if !seen {
                return Err(format!("node {c} unreachable"));
            }
        }
        Ok(())
    }
}

/// A complete synthetic (or preset) microservice application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct App {
    /// Application name.
    pub name: String,
    /// Cluster node names.
    pub nodes: Vec<String>,
    /// Service inventory.
    pub services: Vec<Service>,
    /// Operation flows.
    pub flows: Vec<Flow>,
}

impl App {
    /// Total number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Total number of RPC invocation sites across flows (the paper's
    /// "RPCs" count in Table 1).
    pub fn num_rpcs(&self) -> usize {
        self.flows.iter().map(Flow::len).sum()
    }

    /// Spans of the largest flow (Table 1 "Max spans").
    pub fn max_spans(&self) -> usize {
        self.flows.iter().map(Flow::span_count).max().unwrap_or(0)
    }

    /// Span-level depth of the deepest flow (Table 1 "Max depth"): each
    /// RPC level contributes a client and a server hop, so a tree of RPC
    /// depth `d` produces spans nested `2d + 1` deep.
    pub fn max_depth(&self) -> usize {
        self.flows
            .iter()
            .map(|f| 2 * f.depth() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Largest fan-out of any RPC (Table 1 "Max out degree").
    pub fn max_out_degree(&self) -> usize {
        self.flows
            .iter()
            .map(Flow::max_out_degree)
            .max()
            .unwrap_or(0)
    }

    /// Validate all flows against the service inventory.
    pub fn validate(&self) -> Result<(), String> {
        if self.services.is_empty() {
            return Err("no services".into());
        }
        for s in &self.services {
            if s.pods.is_empty() {
                return Err(format!("service {} has no pods", s.name));
            }
            for p in &s.pods {
                if p.node >= self.nodes.len() {
                    return Err(format!("pod {} on unknown node", p.name));
                }
            }
        }
        for f in &self.flows {
            f.validate(self.services.len())
                .map_err(|e| format!("flow {}: {e}", f.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Kernel, KernelKind};

    fn leaf_node(service: usize, op: &str) -> FlowNode {
        FlowNode {
            service,
            op_name: op.to_string(),
            children: vec![],
            exec: ExecutionPlan::default(),
            pre_kernel: Kernel::with_median(KernelKind::Cpu, 100.0, 0.5),
            post_kernel: Kernel::negligible(),
            timeout_us: 1_000_000,
            base_error_rate: 0.0,
        }
    }

    fn two_level_app() -> App {
        let mut root = leaf_node(0, "GET /");
        root.children = vec![1, 2];
        root.exec = ExecutionPlan::parallel(2);
        App {
            name: "test".into(),
            nodes: vec!["n0".into()],
            services: vec![
                Service {
                    name: "frontend".into(),
                    tier: Tier::Frontend,
                    pods: vec![Pod {
                        name: "frontend-0".into(),
                        node: 0,
                    }],
                },
                Service {
                    name: "cart".into(),
                    tier: Tier::Backend,
                    pods: vec![Pod {
                        name: "cart-0".into(),
                        node: 0,
                    }],
                },
            ],
            flows: vec![Flow {
                name: "GET /".into(),
                weight: 1.0,
                nodes: vec![root, leaf_node(1, "Get"), leaf_node(1, "List")],
            }],
        }
    }

    #[test]
    fn app_statistics() {
        let app = two_level_app();
        assert_eq!(app.num_services(), 2);
        assert_eq!(app.num_rpcs(), 3);
        assert_eq!(app.max_spans(), 5);
        assert_eq!(app.max_depth(), 3);
        assert_eq!(app.max_out_degree(), 2);
        app.validate().unwrap();
    }

    #[test]
    fn execution_plan_shapes() {
        let s = ExecutionPlan::sequential(3);
        assert_eq!(s.stages.len(), 3);
        s.validate(3).unwrap();
        let p = ExecutionPlan::parallel(3);
        assert_eq!(p.stages.len(), 1);
        p.validate(3).unwrap();
        assert!(ExecutionPlan::parallel(0).stages.is_empty());
    }

    #[test]
    fn execution_plan_validation_errors() {
        let mut plan = ExecutionPlan::sequential(2);
        assert!(plan.validate(3).is_err()); // missing position
        plan.stages.push(vec![1]);
        assert!(plan.validate(2).is_err()); // duplicate
        let oob = ExecutionPlan {
            stages: vec![vec![5]],
            async_children: vec![],
        };
        assert!(oob.validate(2).is_err());
    }

    #[test]
    fn flow_validation_rejects_bad_topology() {
        let mut app = two_level_app();
        // child pointing backwards
        app.flows[0].nodes[2].children = vec![1];
        assert!(app.validate().is_err());

        let mut app2 = two_level_app();
        app2.flows[0].nodes[0].service = 99;
        assert!(app2.validate().is_err());
    }

    #[test]
    fn flow_validation_rejects_unreachable() {
        let mut app = two_level_app();
        app.flows[0].nodes[0].children = vec![1];
        app.flows[0].nodes[0].exec = ExecutionPlan::sequential(1);
        // node 2 now unreachable
        assert!(app.validate().unwrap_err().contains("unreachable"));
    }

    #[test]
    fn serde_roundtrip() {
        let app = two_level_app();
        let json = serde_json::to_string(&app).unwrap();
        let back: App = serde_json::from_str(&json).unwrap();
        assert_eq!(app, back);
    }

    #[test]
    fn async_children_counted_in_plan() {
        let plan = ExecutionPlan {
            stages: vec![vec![0]],
            async_children: vec![1],
        };
        plan.validate(2).unwrap();
        assert_eq!(plan.all_positions(), vec![0, 1]);
    }
}
