//! Std-only data-parallel execution runtime.
//!
//! Sleuth's offline pipeline is dominated by embarrassingly parallel
//! loops — the O(n²) weighted-Jaccard distance matrix feeding HDBSCAN
//! (§3.3), per-trace encoding, and the counterfactual re-predictions
//! of §3.5 — and the serving runtime wants several RCA workers per
//! process. This crate provides the one shared substrate: a
//! fixed-size, work-stealing [`ThreadPool`] with *scoped* parallel
//! primitives over borrowed data:
//!
//! * [`ThreadPool::par_map`] — map a function over a slice,
//! * [`ThreadPool::par_chunks`] — one result per fixed-size chunk,
//! * [`ThreadPool::par_triangle`] — fill the condensed upper triangle
//!   of a symmetric pairwise matrix, partitioned into row bands.
//!
//! # Guarantees
//!
//! * **Deterministic results.** Every primitive writes each output
//!   slot from exactly one task, indexed by position — the result is
//!   bit-identical to the sequential loop regardless of thread count
//!   or scheduling. (Execution *order* is not deterministic; outputs
//!   are.)
//! * **Panic propagation.** If a task panics, the batch is cancelled,
//!   the first panic payload is captured, and the calling thread
//!   re-raises it after the batch drains. The pool survives and stays
//!   usable. Output values already produced by other tasks of the
//!   aborted batch are leaked, never dropped twice.
//! * **Sequential fallback.** A pool of one thread (or a call made
//!   from inside a pool worker — nested parallelism) runs the plain
//!   sequential loop on the calling thread: zero scheduling overhead,
//!   identical results.
//!
//! # Pool lifecycle
//!
//! [`ThreadPool::new(n)`](ThreadPool::new) spawns `n − 1` workers; the
//! caller of every primitive is the n-th executor (caller-runs), so a
//! submitted batch always makes progress even when all workers are
//! busy elsewhere. Batches from concurrent callers queue up and
//! workers *steal* whole task indices from any pending batch via an
//! atomic claim counter — dynamic self-scheduling that balances
//! irregular task sizes (e.g. the shrinking rows of a triangle).
//! Dropping the pool joins all workers.
//!
//! [`ThreadPool::global`] is the process-wide shared pool used by the
//! library hot paths. Its size is `available_parallelism()`, overridden
//! by the `SLEUTH_THREADS` environment variable (read once, at first
//! use; `SLEUTH_THREADS=1` forces fully sequential execution).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Whether the current thread is a pool worker (used to run nested
    /// parallel calls sequentially instead of oversubscribing).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Lifetime-erased pointer to a batch's task closure. Only
/// dereferenced while the owning [`ThreadPool::run_batch`] call is
/// still blocked on the batch (see the safety argument there).
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync`, so sharing the pointer across worker
// threads for shared (`&`) calls is sound; validity is guaranteed by
// the run_batch protocol.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Raw output cursor shared with tasks; each task writes a disjoint
/// set of slots.
struct SendPtr<T>(*mut T);

// SAFETY: tasks write disjoint `T` slots from worker threads, which
// requires `T: Send`; no two tasks alias a slot.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    ///
    /// `idx` must be in bounds of the allocation and written by at
    /// most one task.
    unsafe fn write(&self, idx: usize, value: T) {
        self.0.add(idx).write(value);
    }
}

struct Done {
    /// Task indices claimed-and-finished still outstanding.
    remaining: usize,
    /// First panic payload observed in this batch.
    panic: Option<Box<dyn Any + Send>>,
}

/// One submitted parallel batch: `n_tasks` indices claimed via an
/// atomic counter by whichever threads get there first.
struct Batch {
    task: TaskPtr,
    n_tasks: usize,
    next: AtomicUsize,
    /// Set on the first panic: remaining unclaimed indices are counted
    /// down without running.
    cancelled: AtomicBool,
    done: Mutex<Done>,
    cv: Condvar,
}

struct PoolState {
    batches: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// Fixed-size work-stealing thread pool with scoped, deterministic
/// parallel primitives. See the crate docs for the guarantees.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

fn detected_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pool size for [`ThreadPool::global`]: the `SLEUTH_THREADS`
/// environment variable when set to a positive integer, otherwise
/// `available_parallelism()` (1 if undetectable).
pub fn default_threads() -> usize {
    match std::env::var("SLEUTH_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => detected_threads(),
        },
        Err(_) => detected_threads(),
    }
}

impl ThreadPool {
    /// A pool executing on `n_threads` threads total: `n_threads − 1`
    /// spawned workers plus the calling thread of each primitive.
    /// `n_threads == 1` spawns nothing and runs everything
    /// sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero or a worker thread cannot be
    /// spawned.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads >= 1, "thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                batches: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let workers = (1..n_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sleuth-par-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            n_threads,
        }
    }

    /// The process-wide shared pool, created on first use with
    /// [`default_threads`] threads.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }

    /// Total executor count (spawned workers + the calling thread).
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// Whether a call with `n_tasks` tasks should skip the pool: a
    /// one-thread pool, a trivial batch, or a nested call from a pool
    /// worker (which would otherwise wait on its own siblings).
    fn use_sequential(&self, n_tasks: usize) -> bool {
        self.n_threads == 1 || n_tasks <= 1 || IN_POOL.with(Cell::get)
    }

    /// Map `f` over `items`, preserving order. Bit-identical to
    /// `items.iter().map(f).collect()` at any thread count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if self.use_sequential(n) {
            return items.iter().map(f).collect();
        }
        // ~4 chunks per thread: coarse enough to amortise claim
        // overhead, fine enough for the claim counter to balance load.
        let chunk = n.div_ceil(4 * self.n_threads).max(1);
        let n_tasks = n.div_ceil(chunk);
        let mut out: Vec<R> = Vec::with_capacity(n);
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.run_batch(n_tasks, &|t| {
            let start = t * chunk;
            let end = (start + chunk).min(n);
            for (i, item) in items[start..end].iter().enumerate() {
                let value = f(item);
                // SAFETY: slot `start + i` belongs to task `t` alone
                // and lies within the `n`-slot allocation.
                unsafe { out_ptr.write(start + i, value) };
            }
        });
        // SAFETY: run_batch returned without panicking, so every task
        // ran and all `n` slots are initialised.
        unsafe { out.set_len(n) };
        out
    }

    /// One result per `chunk_size`-sized chunk of `items` (the last
    /// chunk may be shorter); `f` receives the chunk index and the
    /// chunk. Results are in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        if items.is_empty() {
            return Vec::new();
        }
        let n_tasks = items.len().div_ceil(chunk_size);
        if self.use_sequential(n_tasks) {
            return items
                .chunks(chunk_size)
                .enumerate()
                .map(|(i, c)| f(i, c))
                .collect();
        }
        let mut out: Vec<R> = Vec::with_capacity(n_tasks);
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.run_batch(n_tasks, &|t| {
            let start = t * chunk_size;
            let end = (start + chunk_size).min(items.len());
            let value = f(t, &items[start..end]);
            // SAFETY: slot `t` belongs to task `t` alone.
            unsafe { out_ptr.write(t, value) };
        });
        // SAFETY: as in par_map.
        unsafe { out.set_len(n_tasks) };
        out
    }

    /// Fill the condensed upper triangle of an `n × n` symmetric
    /// matrix: `f(i, j)` for all `i < j`, row-major (the layout used by
    /// `DistanceMatrix`). The triangle is partitioned into row bands
    /// claimed dynamically, so the shrinking row lengths stay balanced
    /// across threads.
    pub fn par_triangle<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        let len = n * n.saturating_sub(1) / 2;
        if len == 0 {
            return Vec::new();
        }
        let n_rows = n - 1; // row i covers pairs (i, i+1..n); row n−1 is empty
        if self.use_sequential(n_rows) {
            let mut data = Vec::with_capacity(len);
            for i in 0..n {
                for j in (i + 1)..n {
                    data.push(f(i, j));
                }
            }
            return data;
        }
        let mut out: Vec<R> = Vec::with_capacity(len);
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.run_batch(n_rows, &|i| {
            let row_start = i * n - i * (i + 1) / 2;
            for j in (i + 1)..n {
                let value = f(i, j);
                // SAFETY: row `i` owns slots `row_start..row_start +
                // (n − 1 − i)`, disjoint across rows and within `len`.
                unsafe { out_ptr.write(row_start + (j - i - 1), value) };
            }
        });
        // SAFETY: as in par_map.
        unsafe { out.set_len(len) };
        out
    }

    /// Execute `task(0..n_tasks)` across the pool, blocking until all
    /// indices finish; re-raises the first task panic.
    fn run_batch(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        debug_assert!(n_tasks > 0);
        // SAFETY (lifetime erasure): the erased reference is only ever
        // dereferenced by `drain_batch`, which calls the task strictly
        // before counting the claimed index finished; this function
        // does not return until `remaining == 0`, so every dereference
        // happens while the caller — and therefore the borrow — is
        // still alive.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let batch = Arc::new(Batch {
            task: TaskPtr(task),
            n_tasks,
            next: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            done: Mutex::new(Done {
                remaining: n_tasks,
                panic: None,
            }),
            cv: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.batches.push_back(Arc::clone(&batch));
        }
        self.shared.work_cv.notify_all();
        // Caller-runs: guarantees progress even with zero free workers.
        drain_batch(&batch);
        let panic = {
            let mut done = batch.done.lock().expect("batch lock");
            while done.remaining > 0 {
                done = batch.cv.wait(done).expect("batch lock");
            }
            done.panic.take()
        };
        // De-queue the exhausted batch (workers also skip exhausted
        // batches, this just keeps the queue from accumulating stubs).
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.batches.retain(|b| !Arc::ptr_eq(b, &batch));
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Claim and run task indices until the batch is exhausted. Every
/// claimed index is counted finished exactly once, so `remaining`
/// reliably reaches zero even across panics and cancellation.
fn drain_batch(batch: &Batch) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.n_tasks {
            break;
        }
        let result = if batch.cancelled.load(Ordering::Relaxed) {
            Ok(())
        } else {
            // SAFETY: see the lifetime-erasure argument in run_batch.
            catch_unwind(AssertUnwindSafe(|| unsafe { (*batch.task.0)(i) }))
        };
        let mut done = batch.done.lock().expect("batch lock");
        if let Err(payload) = result {
            if done.panic.is_none() {
                done.panic = Some(payload);
            }
            batch.cancelled.store(true, Ordering::Relaxed);
        }
        done.remaining -= 1;
        if done.remaining == 0 {
            batch.cv.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_POOL.with(|f| f.set(true));
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                // Steal from the oldest batch that still has unclaimed
                // tasks; drop exhausted stubs from the front.
                while st
                    .batches
                    .front()
                    .is_some_and(|b| b.next.load(Ordering::Relaxed) >= b.n_tasks)
                {
                    st.batches.pop_front();
                }
                if let Some(b) = st
                    .batches
                    .iter()
                    .find(|b| b.next.load(Ordering::Relaxed) < b.n_tasks)
                {
                    break Arc::clone(b);
                }
                st = shared.work_cv.wait(st).expect("pool lock");
            }
        };
        drain_batch(&batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.par_map(&items, |x| x * x + 1), expected);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map(&[] as &[u8], |x| *x), Vec::<u8>::new());
        assert_eq!(pool.par_map(&[7u8], |x| *x as u32 * 2), vec![14]);
    }

    #[test]
    fn par_chunks_preserves_chunk_order_and_indices() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let sums = pool.par_chunks(&items, 10, |idx, chunk| {
                (idx, chunk.iter().sum::<usize>(), chunk.len())
            });
            assert_eq!(sums.len(), 11);
            assert_eq!(sums[0], (0, 45, 10));
            assert_eq!(sums[10], (10, 100 + 101 + 102, 3));
            for (i, entry) in sums.iter().enumerate() {
                assert_eq!(entry.0, i);
            }
        }
    }

    #[test]
    fn par_triangle_matches_nested_loop() {
        for n in [0usize, 1, 2, 3, 17, 64] {
            let mut expected = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    expected.push((i * 1000 + j) as f64);
                }
            }
            for threads in [1, 2, 8] {
                let pool = ThreadPool::new(threads);
                let got = pool.par_triangle(n, |i, j| (i * 1000 + j) as f64);
                assert_eq!(got, expected, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                if x == 33 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 33"), "unexpected payload: {msg}");
        // The pool keeps working after a panicked batch.
        assert_eq!(pool.par_map(&items, |&x| x + 1)[0], 1);
    }

    #[test]
    fn nested_calls_complete() {
        let pool = ThreadPool::new(4);
        let outer: Vec<u64> = (0..16).collect();
        let result = pool.par_map(&outer, |&x| {
            let inner: Vec<u64> = (0..8).map(|i| x * 8 + i).collect();
            ThreadPool::global()
                .par_map(&inner, |&y| y * 2)
                .iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..16u64)
            .map(|x| (0..8).map(|i| (x * 8 + i) * 2).sum())
            .collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn all_items_visited_exactly_once() {
        let pool = ThreadPool::new(8);
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        // Thread-identity check: every call runs on the caller.
        let me = std::thread::current().id();
        let ids = pool.par_map(&[0u8; 9], |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == me));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(ThreadPool::global().num_threads() >= 1);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let pool = Arc::new(ThreadPool::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let items: Vec<u64> = (0..200).map(|i| i + t * 1000).collect();
                    let got = pool.par_map(&items, |&x| x * 3);
                    let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
                    assert_eq!(got, expected);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// par_map is the identity transformation of sequential map for
        /// arbitrary inputs and small thread counts.
        #[test]
        fn prop_par_map_equals_sequential(
            xs in proptest::collection::vec(0u64..1_000_000, 0..200),
            threads in 1usize..5,
        ) {
            let pool = ThreadPool::new(threads);
            let expected: Vec<u64> = xs.iter().map(|x| x.wrapping_mul(2654435761)).collect();
            prop_assert_eq!(pool.par_map(&xs, |x| x.wrapping_mul(2654435761)), expected);
        }
    }
}
