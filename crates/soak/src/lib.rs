//! Soak/replay harness for the serving runtime.
//!
//! `sleuth-synth`'s [`Scenario`](sleuth_synth::scenario::Scenario)
//! generators describe hours of production-shaped traffic with
//! ground-truth-labelled fault episodes; this crate replays them
//! against a live [`ServeRuntime`](sleuth_serve::ServeRuntime) —
//! optionally under a `sleuth-chaos` fault plan — on a *logical*
//! clock, so a multi-hour scenario compresses into seconds of wall
//! time while exercising exactly the arrival pattern, idle-timeout
//! finalization and episode windows the scenario specifies.
//!
//! While replaying, the runner continuously evaluates:
//!
//! * **exact span conservation** — the serve metrics identity
//!   `submitted = stored + rejected + shed + evicted + deduped +
//!   quarantined` must balance after shutdown,
//! * **RCA latency SLOs** — wall-clock p99 of verdict localisation,
//! * **rolling RCA precision/recall** — every verdict is scored
//!   against the per-trace simulation ground truth, and every fault
//!   episode against its label: an episode that produced
//!   detector-visible perturbed traffic must be *recovered* (some
//!   verdict names a labelled root-cause service inside its window),
//! * **zero false anomalies** — a verdict for a trace whose ground
//!   truth is empty is always a violation,
//!
//! emitting a JSON [`Checkpoint`] line per logical interval and a
//! final [`SoakOutcome`] whose `violations` list is empty exactly
//! when the run passed. The `sleuth-soak` binary wraps this with a
//! CLI and tier-1 wires its `--smoke` mode into every PR gate.

mod report;
mod runner;

pub use report::{Checkpoint, EpisodeOutcome, SoakOutcome, TenantReport};
pub use runner::{fit_pipeline, run, SoakOptions};
