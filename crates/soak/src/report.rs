//! Machine-readable soak results: periodic checkpoint lines and the
//! final outcome.

use serde::Serialize;
use sleuth_serve::MetricsSnapshot;

/// One periodic progress line, serialized as JSON to the soak log.
/// Fields are cumulative since scenario start.
#[derive(Debug, Clone, Serialize)]
pub struct Checkpoint {
    /// Always `"checkpoint"` (line discriminator for log parsers).
    pub kind: String,
    /// Scenario name (`<kind>-s<seed>`).
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Logical time of this checkpoint, µs from scenario start.
    pub logical_us: u64,
    /// Wall time elapsed, ms.
    pub wall_ms: u64,
    /// Requests submitted so far.
    pub traces_submitted: u64,
    /// Spans submitted so far.
    pub spans_submitted: u64,
    /// Submitted requests that were client retries.
    pub retries: u64,
    /// Verdicts received so far.
    pub verdicts: u64,
    /// Verdicts shed to the degraded path.
    pub degraded_verdicts: u64,
    /// Verdicts naming a ground-truth root-cause service.
    pub true_positives: u64,
    /// Verdicts on perturbed traces naming no ground-truth service.
    pub false_positives: u64,
    /// Verdicts on traces with *empty* ground truth (must stay 0).
    pub false_anomalies: u64,
    /// Second-or-later verdicts for a trace id that already has one
    /// (must stay 0: every scheduled request — retries included —
    /// carries a fresh trace id, so verdicts are exactly-once).
    pub duplicate_verdicts: u64,
    /// `tp / (tp + fp + false_anomalies)`; 1.0 before any verdict.
    pub precision: f64,
    /// Recovered fraction of the eligible episodes already ended.
    pub episode_recall: f64,
    /// Fault episodes in the scenario.
    pub episodes_total: usize,
    /// Episodes whose window has closed.
    pub episodes_ended: usize,
    /// Ended episodes that produced detector-visible perturbed
    /// traffic (the recall denominator).
    pub episodes_eligible: usize,
    /// Eligible episodes already recovered by some verdict.
    pub episodes_recovered: usize,
    /// Wall-clock RCA latency p99 upper bound, µs.
    pub rca_p99_us: u64,
    /// Worker panics caught by supervision so far.
    pub worker_panics: u64,
    /// Worker restarts so far.
    pub worker_restarts: u64,
    /// Spans parked in quarantine so far.
    pub spans_quarantined: u64,
    /// Spans refused at admission so far.
    pub spans_rejected: u64,
}

/// Final state of one fault episode.
#[derive(Debug, Clone, Serialize)]
pub struct EpisodeOutcome {
    /// Index into the scenario's episode list.
    pub index: usize,
    /// Fault-class tag from the label.
    pub fault: String,
    /// Window start, logical µs.
    pub start_us: u64,
    /// Window end, logical µs.
    pub end_us: u64,
    /// Labelled root-cause services.
    pub services: Vec<String>,
    /// Labelled tenant, for multi-tenant scenarios.
    pub tenant: Option<String>,
    /// Requests that arrived inside the window.
    pub traces_in_window: u64,
    /// Delivered traces the episode perturbed (ground truth names a
    /// labelled service) that the detector flags as anomalous.
    pub eligible_traces: u64,
    /// Whether some verdict named a labelled service for a trace
    /// perturbed by this episode.
    pub recovered: bool,
}

/// Per-tenant SLO compliance, measured against the tenant's own
/// healthy p99.
#[derive(Debug, Clone, Serialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests attributed to the tenant.
    pub traces: u64,
    /// The tenant's latency SLO, µs (`slo_multiplier` × healthy p99
    /// of its clean traffic; 0 when the tenant saw no clean traffic).
    pub slo_us: u64,
    /// Requests exceeding the SLO.
    pub slo_violations: u64,
}

/// Everything a finished soak run reports.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Scenario kind name (`diurnal_flash`, …).
    pub kind: String,
    /// Scenario seed.
    pub seed: u64,
    /// Logical length replayed, µs.
    pub duration_us: u64,
    /// Wall time spent, ms.
    pub wall_ms: u64,
    /// Logical seconds replayed per wall second.
    pub compression: f64,
    /// Requests submitted.
    pub traces: u64,
    /// Spans submitted.
    pub spans: u64,
    /// Client retries among the requests.
    pub retries: u64,
    /// Whether the schedule hit its generation cap.
    pub truncated: bool,
    /// Verdicts received.
    pub verdicts: u64,
    /// Degraded verdicts among them.
    pub degraded_verdicts: u64,
    /// Verdicts naming a ground-truth service.
    pub true_positives: u64,
    /// Verdicts on perturbed traces missing the ground truth.
    pub false_positives: u64,
    /// Verdicts on unperturbed traces.
    pub false_anomalies: u64,
    /// Repeat verdicts for an already-settled trace id (must stay 0).
    pub duplicate_verdicts: u64,
    /// `tp / (tp + fp + false_anomalies)`; 1.0 with no verdicts.
    pub precision: f64,
    /// Recovered / eligible episodes; 1.0 with no eligible episodes.
    pub recall: f64,
    /// Per-episode outcomes.
    pub episodes: Vec<EpisodeOutcome>,
    /// Per-tenant SLO compliance.
    pub tenants: Vec<TenantReport>,
    /// Worker panics caught by supervision.
    pub caught_panics: u64,
    /// Whether the span conservation identity balanced exactly.
    pub conservation_ok: bool,
    /// Wall-clock RCA latency p99 upper bound, µs.
    pub rca_p99_us: u64,
    /// Every continuous-assertion failure observed; empty = pass.
    pub violations: Vec<String>,
    /// Final serve metrics.
    pub metrics: MetricsSnapshot,
}
