//! The replay loop: scenario traffic into a live runtime, continuous
//! scoring against ground truth.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use sleuth_chaos::{FaultPlan as RuntimeFaultPlan, SeededInjector};
use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_serve::{FaultInjector, ServeConfig, ServeRuntime, Verdict};
use sleuth_synth::scenario::Scenario;

use crate::report::{Checkpoint, EpisodeOutcome, SoakOutcome, TenantReport};

/// Runner knobs. Defaults suit the smoke scale; multi-hour soaks
/// mainly raise `checkpoint_every_us`.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Serve ingest shards.
    pub num_shards: usize,
    /// RCA workers.
    pub rca_workers: usize,
    /// Logical idle gap after which a trace is finalized, µs.
    pub idle_timeout_us: u64,
    /// Logical tick cadence driving trace finalization, µs.
    pub tick_every_us: u64,
    /// Logical interval between checkpoint lines, µs.
    pub checkpoint_every_us: u64,
    /// Wall-clock RCA latency p99 budget, µs.
    pub rca_p99_slo_us: u64,
    /// Runtime-level chaos plan to run under (worker kills, stalls,
    /// clock skew…). `None` = calm runtime.
    pub chaos: Option<RuntimeFaultPlan>,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            num_shards: 2,
            rca_workers: 2,
            idle_timeout_us: 2_000_000,
            tick_every_us: 250_000,
            checkpoint_every_us: 60_000_000,
            rca_p99_slo_us: 500_000,
            chaos: None,
        }
    }
}

/// Fit a pipeline for a scenario's app: healthy training corpus,
/// quick GNN fit, detector widened to `slo_multiplier` × the learned
/// root p95 so healthy tail traffic never trips it. Scenarios built
/// from the same [`ScenarioParams`](sleuth_synth::scenario::ScenarioParams)
/// share an app, so one fitted pipeline serves them all.
pub fn fit_pipeline(
    scenario: &Scenario,
    train_traces: usize,
    epochs: usize,
    slo_multiplier: f64,
) -> Arc<SleuthPipeline> {
    let train = scenario.training_corpus(train_traces);
    let config = PipelineConfig {
        train: TrainConfig {
            epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
        ..PipelineConfig::default()
    };
    let mut pipeline = SleuthPipeline::fit(&train, &config);
    pipeline.detector_mut().slo_multiplier = slo_multiplier;
    Arc::new(pipeline)
}

/// What the runner remembers about each submitted trace to score the
/// verdicts that come back.
struct TraceTruth {
    gt_services: BTreeSet<String>,
    episodes: Vec<usize>,
}

struct EpisodeState {
    label_services: BTreeSet<String>,
    traces_in_window: u64,
    eligible_traces: u64,
    recovered: bool,
}

#[derive(Default)]
struct Agg {
    verdicts: u64,
    degraded: u64,
    tp: u64,
    fp: u64,
    false_anomalies: u64,
    /// Trace ids that already produced a verdict; every scheduled
    /// request (retries included) carries a fresh id, so a repeat is
    /// an exactly-once violation.
    settled: BTreeSet<u64>,
    duplicates: u64,
}

impl Agg {
    fn precision(&self) -> f64 {
        let denom = self.tp + self.fp + self.false_anomalies;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    fn score(&mut self, v: &Verdict, truth: &HashMap<u64, TraceTruth>, eps: &mut [EpisodeState]) {
        self.verdicts += 1;
        if v.degraded {
            self.degraded += 1;
        }
        if !self.settled.insert(v.trace_id) {
            self.duplicates += 1;
        }
        match truth.get(&v.trace_id) {
            Some(t) if !t.gt_services.is_empty() => {
                if v.services.iter().any(|s| t.gt_services.contains(s)) {
                    self.tp += 1;
                } else {
                    self.fp += 1;
                }
                for &e in &t.episodes {
                    if v.services.iter().any(|s| eps[e].label_services.contains(s)) {
                        eps[e].recovered = true;
                    }
                }
            }
            _ => self.false_anomalies += 1,
        }
    }
}

/// p99 with the usual upper-index convention; 0 for an empty sample.
fn p99_us(durations: &mut [u64]) -> u64 {
    if durations.is_empty() {
        return 0;
    }
    durations.sort_unstable();
    let n = durations.len();
    durations[(n * 99 / 100).min(n - 1)]
}

/// Replay `scenario` against a fresh runtime serving `pipeline`,
/// scoring continuously. `on_checkpoint` fires once per logical
/// `checkpoint_every_us`; the returned outcome's `violations` is
/// empty exactly when every continuous assertion held.
pub fn run(
    scenario: &Scenario,
    pipeline: Arc<SleuthPipeline>,
    opts: &SoakOptions,
    mut on_checkpoint: impl FnMut(&Checkpoint),
) -> SoakOutcome {
    let wall_start = Instant::now();
    let schedule = scenario.schedule();
    let detector = pipeline.detector().clone();

    let config = ServeConfig {
        num_shards: opts.num_shards,
        rca_workers: opts.rca_workers,
        idle_timeout_us: opts.idle_timeout_us,
        refresh: None,
        ..ServeConfig::default()
    };
    let runtime = match &opts.chaos {
        Some(plan) => ServeRuntime::start_with_injector(
            Arc::clone(&pipeline),
            config,
            Arc::new(SeededInjector::new(*plan)) as Arc<dyn FaultInjector>,
        ),
        None => ServeRuntime::start(Arc::clone(&pipeline), config),
    }
    .expect("soak serve config is valid");

    let mut eps: Vec<EpisodeState> = scenario
        .episodes
        .iter()
        .map(|e| EpisodeState {
            label_services: e.label.services.clone(),
            traces_in_window: 0,
            eligible_traces: 0,
            recovered: false,
        })
        .collect();
    let mut truth: HashMap<u64, TraceTruth> = HashMap::with_capacity(schedule.traces.len());
    let mut agg = Agg::default();
    let mut traces_submitted = 0u64;
    let mut spans_submitted = 0u64;
    let mut retries_submitted = 0u64;
    let mut resubmissions = 0u64;
    let mut violations: Vec<String> = Vec::new();

    let mut next_tick = opts.tick_every_us;
    let mut next_cp = opts.checkpoint_every_us;

    let checkpoint = |logical_us: u64,
                      runtime: &ServeRuntime,
                      agg: &Agg,
                      eps: &[EpisodeState],
                      traces_submitted: u64,
                      spans_submitted: u64,
                      retries_submitted: u64,
                      on_checkpoint: &mut dyn FnMut(&Checkpoint)| {
        let m = runtime.metrics().snapshot();
        let ended: Vec<usize> = scenario
            .episodes
            .iter()
            .enumerate()
            .filter(|(_, e)| e.end_us <= logical_us)
            .map(|(i, _)| i)
            .collect();
        let eligible = ended
            .iter()
            .filter(|&&i| eps[i].eligible_traces > 0)
            .count();
        let recovered = ended
            .iter()
            .filter(|&&i| eps[i].eligible_traces > 0 && eps[i].recovered)
            .count();
        let cp = Checkpoint {
            kind: "checkpoint".into(),
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            logical_us,
            wall_ms: wall_start.elapsed().as_millis() as u64,
            traces_submitted,
            spans_submitted,
            retries: retries_submitted,
            verdicts: agg.verdicts,
            degraded_verdicts: agg.degraded,
            true_positives: agg.tp,
            false_positives: agg.fp,
            false_anomalies: agg.false_anomalies,
            duplicate_verdicts: agg.duplicates,
            precision: agg.precision(),
            episode_recall: if eligible == 0 {
                1.0
            } else {
                recovered as f64 / eligible as f64
            },
            episodes_total: scenario.episodes.len(),
            episodes_ended: ended.len(),
            episodes_eligible: eligible,
            episodes_recovered: recovered,
            rca_p99_us: m.rca_latency_us.quantile_upper_bound(0.99),
            worker_panics: m.worker_panics.iter().map(|&(_, _, n)| n).sum(),
            worker_restarts: m.worker_restarts.iter().map(|&(_, _, n)| n).sum(),
            spans_quarantined: m.spans_quarantined,
            spans_rejected: m.spans_rejected,
        };
        on_checkpoint(&cp);
    };

    for st in &schedule.traces {
        while next_tick <= st.at_us {
            runtime.tick(next_tick);
            for v in runtime.poll_verdicts() {
                agg.score(&v, &truth, &mut eps);
            }
            if next_tick >= next_cp {
                checkpoint(
                    next_tick,
                    &runtime,
                    &agg,
                    &eps,
                    traces_submitted,
                    spans_submitted,
                    retries_submitted,
                    &mut on_checkpoint,
                );
                next_cp += opts.checkpoint_every_us;
            }
            next_tick += opts.tick_every_us;
        }

        let id = st.sim.trace.trace_id();
        let n_spans = st.sim.trace.spans().len();
        let mut report = runtime.submit_batch(st.sim.trace.spans().to_vec(), st.at_us);
        // Transient backpressure: the replay loop outruns wall time by
        // design, so a full queue just means "let the workers drain".
        let mut attempts = 0;
        while report.rejected > 0 && attempts < 200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            resubmissions += 1;
            attempts += 1;
            report = runtime.submit_batch(st.sim.trace.spans().to_vec(), st.at_us);
        }
        traces_submitted += 1;
        spans_submitted += n_spans as u64;
        if st.retry_of.is_some() {
            retries_submitted += 1;
        }
        let delivered = report.rejected == 0 && report.invalid == 0;
        if !delivered {
            violations.push(format!(
                "trace {id} not fully delivered after {attempts} retries (rejected {}, invalid {})",
                report.rejected, report.invalid
            ));
        }

        let gt_services = st.sim.ground_truth.services.clone();
        let anomalous = detector.is_anomalous(&st.sim.trace);
        for &e in &st.episodes_active {
            eps[e].traces_in_window += 1;
            let labelled = gt_services.intersection(&eps[e].label_services).count() > 0;
            if delivered && labelled && anomalous {
                eps[e].eligible_traces += 1;
            }
        }
        truth.insert(
            id,
            TraceTruth {
                gt_services,
                episodes: st.episodes_active.clone(),
            },
        );
    }

    // Flush: run the logical clock past the last arrival's idle
    // timeout so every trace finalizes, then drain the runtime.
    let last_at = schedule.traces.last().map_or(0, |s| s.at_us);
    let end = last_at + opts.idle_timeout_us + 2 * opts.tick_every_us;
    while next_tick <= end {
        runtime.tick(next_tick);
        for v in runtime.poll_verdicts() {
            agg.score(&v, &truth, &mut eps);
        }
        if next_tick >= next_cp {
            checkpoint(
                next_tick,
                &runtime,
                &agg,
                &eps,
                traces_submitted,
                spans_submitted,
                retries_submitted,
                &mut on_checkpoint,
            );
            next_cp += opts.checkpoint_every_us;
        }
        next_tick += opts.tick_every_us;
    }
    let report = runtime.shutdown();
    for v in &report.verdicts {
        agg.score(v, &truth, &mut eps);
    }

    // --- Final assertions -------------------------------------------------
    let m = &report.metrics;
    let accounted = m.spans_stored
        + m.spans_rejected
        + m.spans_shed
        + m.spans_evicted
        + m.spans_deduped
        + m.spans_quarantined;
    let conservation_ok = m.spans_submitted == accounted;
    if !conservation_ok {
        violations.push(format!(
            "span conservation violated: submitted {} != accounted {accounted}",
            m.spans_submitted
        ));
    }
    if resubmissions == 0 && m.spans_submitted != spans_submitted {
        violations.push(format!(
            "runtime saw {} spans, harness submitted {spans_submitted}",
            m.spans_submitted
        ));
    }
    if m.verdicts_emitted != agg.verdicts {
        violations.push(format!(
            "verdicts emitted {} != verdicts collected {}",
            m.verdicts_emitted, agg.verdicts
        ));
    }
    if agg.false_anomalies > 0 {
        violations.push(format!(
            "{} verdicts on traces with empty ground truth",
            agg.false_anomalies
        ));
    }
    if agg.duplicates > 0 {
        violations.push(format!(
            "{} duplicate verdicts: some trace id settled more than once",
            agg.duplicates
        ));
    }
    for (i, e) in eps.iter().enumerate() {
        if e.eligible_traces > 0 && !e.recovered {
            violations.push(format!(
                "episode {i} ({:?}) not recovered: {} eligible traces, no verdict named {:?}",
                scenario.episodes[i].label.fault, e.eligible_traces, e.label_services
            ));
        }
    }
    let rca_p99 = m.rca_latency_us.quantile_upper_bound(0.99);
    if agg.verdicts > 0 && rca_p99 > opts.rca_p99_slo_us {
        violations.push(format!(
            "RCA latency p99 {rca_p99}µs exceeds SLO {}µs",
            opts.rca_p99_slo_us
        ));
    }
    let caught_panics: u64 = m.worker_panics.iter().map(|&(_, _, n)| n).sum();
    if opts.chaos.is_none() && caught_panics > 0 {
        violations.push(format!("{caught_panics} worker panics on a calm runtime"));
    }

    // --- Per-tenant SLO compliance ----------------------------------------
    let tenants = scenario
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, spec)| {
            let mut clean: Vec<u64> = schedule
                .traces
                .iter()
                .filter(|s| {
                    s.tenant == ti && s.sim.ground_truth.is_empty() && s.episodes_active.is_empty()
                })
                .map(|s| s.sim.trace.total_duration_us())
                .collect();
            let healthy_p99 = p99_us(&mut clean);
            let slo_us = (healthy_p99 as f64 * spec.slo_multiplier) as u64;
            let all: Vec<u64> = schedule
                .traces
                .iter()
                .filter(|s| s.tenant == ti)
                .map(|s| s.sim.trace.total_duration_us())
                .collect();
            TenantReport {
                name: spec.name.clone(),
                traces: all.len() as u64,
                slo_us,
                slo_violations: if slo_us == 0 {
                    0
                } else {
                    all.iter().filter(|&&d| d > slo_us).count() as u64
                },
            }
        })
        .collect();

    let episodes = scenario
        .episodes
        .iter()
        .enumerate()
        .map(|(i, e)| EpisodeOutcome {
            index: i,
            fault: e.label.fault.to_string(),
            start_us: e.start_us,
            end_us: e.end_us,
            services: e.label.services.iter().cloned().collect(),
            tenant: e.label.tenant.clone(),
            traces_in_window: eps[i].traces_in_window,
            eligible_traces: eps[i].eligible_traces,
            recovered: eps[i].recovered,
        })
        .collect();

    let wall_ms = wall_start.elapsed().as_millis() as u64;
    SoakOutcome {
        scenario: scenario.name.clone(),
        kind: scenario.kind.name().to_string(),
        seed: scenario.seed,
        duration_us: scenario.duration_us,
        wall_ms,
        compression: (scenario.duration_us as f64 / 1e6) / (wall_ms.max(1) as f64 / 1e3),
        traces: traces_submitted,
        spans: spans_submitted,
        retries: retries_submitted,
        truncated: schedule.truncated,
        verdicts: agg.verdicts,
        degraded_verdicts: agg.degraded,
        true_positives: agg.tp,
        false_positives: agg.fp,
        false_anomalies: agg.false_anomalies,
        duplicate_verdicts: agg.duplicates,
        precision: agg.precision(),
        recall: {
            let eligible = eps.iter().filter(|e| e.eligible_traces > 0).count();
            if eligible == 0 {
                1.0
            } else {
                eps.iter()
                    .filter(|e| e.eligible_traces > 0 && e.recovered)
                    .count() as f64
                    / eligible as f64
            }
        },
        episodes,
        tenants,
        caught_panics,
        conservation_ok,
        rca_p99_us: rca_p99,
        violations,
        metrics: report.metrics,
    }
}
