//! SLO-based anomaly detection over traces.
//!
//! Sleuth is triggered by traces that violate their service-level
//! objective (§3.1): an end-to-end latency above the flow's learned
//! threshold, or an error at the root. The SLO is learned from a
//! (mostly healthy) corpus as a percentile of per-root-operation
//! latency.

use sleuth_baselines::common::{OpKey, OpProfile};
use sleuth_trace::Trace;

/// Flags SLO-violating traces.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyDetector {
    profile: OpProfile,
    /// Multiplier on the learned p95 before a trace counts as slow.
    pub slo_multiplier: f64,
}

impl AnomalyDetector {
    /// Learn SLOs from a training corpus.
    pub fn fit(traces: &[Trace]) -> Self {
        AnomalyDetector {
            profile: OpProfile::fit(traces),
            slo_multiplier: 1.0,
        }
    }

    /// Build from an existing operation profile.
    pub fn from_profile(profile: OpProfile) -> Self {
        AnomalyDetector {
            profile,
            slo_multiplier: 1.0,
        }
    }

    /// The SLO (µs) applying to a trace, `u64::MAX` for unseen roots.
    pub fn slo_us(&self, trace: &Trace) -> u64 {
        let base = self.profile.root_slo_us(&OpKey::of(trace.span(trace.root())));
        if base == u64::MAX {
            u64::MAX
        } else {
            (base as f64 * self.slo_multiplier) as u64
        }
    }

    /// Whether the trace violates its SLO (too slow or errored).
    pub fn is_anomalous(&self, trace: &Trace) -> bool {
        trace.is_error() || trace.total_duration_us() > self.slo_us(trace)
    }

    /// Indices of anomalous traces in a batch.
    pub fn filter_anomalous(&self, traces: &[Trace]) -> Vec<usize> {
        traces
            .iter()
            .enumerate()
            .filter(|(_, t)| self.is_anomalous(t))
            .map(|(i, _)| i)
            .collect()
    }

    /// The underlying operation profile.
    pub fn profile(&self) -> &OpProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, StatusCode};

    fn mk(id: u64, d: u64, err: bool) -> Trace {
        Trace::assemble(vec![Span::builder(id, 1, "front", "GET /")
            .time(0, d)
            .status(if err { StatusCode::Error } else { StatusCode::Ok })
            .build()])
        .unwrap()
    }

    #[test]
    fn slow_traces_flagged() {
        let train: Vec<Trace> = (0..100).map(|i| mk(i, 1_000 + i, false)).collect();
        let det = AnomalyDetector::fit(&train);
        assert!(!det.is_anomalous(&mk(999, 1_050, false)));
        assert!(det.is_anomalous(&mk(999, 50_000, false)));
    }

    #[test]
    fn error_traces_always_flagged() {
        let train: Vec<Trace> = (0..50).map(|i| mk(i, 1_000, false)).collect();
        let det = AnomalyDetector::fit(&train);
        assert!(det.is_anomalous(&mk(999, 100, true)));
    }

    #[test]
    fn unseen_root_never_slow() {
        let train: Vec<Trace> = (0..50).map(|i| mk(i, 1_000, false)).collect();
        let det = AnomalyDetector::fit(&train);
        let foreign = Trace::assemble(vec![Span::builder(1, 1, "x", "y")
            .time(0, u64::MAX / 4)
            .build()])
        .unwrap();
        assert_eq!(det.slo_us(&foreign), u64::MAX);
        assert!(!det.is_anomalous(&foreign));
    }

    #[test]
    fn multiplier_relaxes_slo() {
        let train: Vec<Trace> = (0..100).map(|i| mk(i, 1_000 + i, false)).collect();
        let mut det = AnomalyDetector::fit(&train);
        det.slo_multiplier = 100.0;
        assert!(!det.is_anomalous(&mk(999, 50_000, false)));
    }

    #[test]
    fn filter_batch() {
        let train: Vec<Trace> = (0..100).map(|i| mk(i, 1_000 + i, false)).collect();
        let det = AnomalyDetector::fit(&train);
        let batch = vec![mk(1, 1_010, false), mk(2, 99_000, false), mk(3, 500, true)];
        assert_eq!(det.filter_anomalous(&batch), vec![1, 2]);
    }
}
