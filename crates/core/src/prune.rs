//! Subtree pruning for counterfactual RCA (TraceDiag-style).
//!
//! The counterfactual search only ever restores spans whose exclusive
//! state deviates from the normal profile — an anomalous exclusive
//! duration (> 2× the operation's median) or an exclusive error.
//! Everything the search can do to a trace is therefore determined by
//! the set of such *restorable* spans, fixed once per localisation:
//!
//! * a subtree containing no restorable span can never receive an
//!   override, and (because the GNN counterfactual is abduced per node)
//!   can never change value — it is **pruned**: the delta-predict path
//!   in [`sleuth_gnn::CfSession`] never recomputes it;
//! * a candidate service none of whose affiliated spans are restorable
//!   has an empty override set; every counterfactual query about it is
//!   the identity and is answered from the observation with **zero**
//!   model evaluations;
//! * the surviving subgraph — the ancestor closure of the restorable
//!   spans — is exactly the region the session recomputes, so RCA cost
//!   scales with fault size, not trace size.
//!
//! [`SubtreeScan`] runs that analysis in one pass over the trace and
//! hands the per-span restoration targets to the localiser, which
//! previously recomputed exclusive durations from scratch for every
//! candidate. The scan prunes *work*, never *answers*: the candidate
//! list and the accept/eliminate control flow are untouched, which is
//! what makes pruned ≡ unpruned provable (and property-tested) rather
//! than approximate.

use sleuth_baselines::common::{OpKey, OpProfile};
use sleuth_trace::{exclusive, transform, Symbol, Trace};

/// Per-trace restorability analysis (see the module docs).
#[derive(Debug)]
pub struct SubtreeScan {
    /// Restoration override `(d*, e*)` per span, `None` when the span is
    /// already normal (restoring it would be the identity).
    restore: Vec<Option<(f32, f32)>>,
    /// Restorable excess exclusive duration per span (µs): how far above
    /// its normal median the span sits, 0 for normal spans.
    excess_us: Vec<u64>,
    /// Whether the span's subtree (self included) contains any
    /// restorable span — i.e. whether the branch survives pruning.
    live: Vec<bool>,
    live_spans: usize,
}

impl SubtreeScan {
    /// Scan `trace` against the normal-state `profile`.
    pub fn scan(trace: &Trace, profile: &OpProfile) -> SubtreeScan {
        let n = trace.len();
        let ex_d = exclusive::exclusive_durations(trace);
        let ex_e = exclusive::exclusive_errors(trace);
        let mut restore = vec![None; n];
        let mut excess_us = vec![0u64; n];
        let mut live = vec![false; n];
        for (i, s) in trace.iter() {
            let med = profile
                .get(&OpKey::of(s))
                .map(|st| st.median_exclusive_us)
                .unwrap_or(0);
            // Only spans meaningfully above their normal state are
            // restored: touching already-normal spans would shave
            // ordinary median-to-observation noise off the whole
            // service and masquerade as counterfactual savings.
            let anomalous_duration = ex_d[i] > med.saturating_mul(2);
            if anomalous_duration || ex_e[i] {
                let target = if anomalous_duration { med } else { ex_d[i] };
                restore[i] = Some((transform::scale_duration(target), 0.0));
                excess_us[i] = ex_d[i].saturating_sub(med);
                live[i] = true;
            }
        }
        // Spans are stored parents-first, so a reverse sweep folds each
        // child's liveness into its parent: `live` becomes "subtree
        // contains restorable content" = the surviving subgraph.
        for i in (0..n).rev() {
            if live[i] {
                if let Some(p) = trace.parent(i) {
                    live[p] = true;
                }
            }
        }
        let live_spans = live.iter().filter(|&&l| l).count();
        SubtreeScan {
            restore,
            excess_us,
            live,
            live_spans,
        }
    }

    /// The restoration override for span `i`, or `None` if restoring it
    /// is the identity.
    pub fn restore_target(&self, i: usize) -> Option<(f32, f32)> {
        self.restore[i]
    }

    /// Restorable excess exclusive duration of span `i` in µs.
    pub fn excess_us(&self, i: usize) -> u64 {
        self.excess_us[i]
    }

    /// Whether span `i`'s branch survives pruning (its subtree contains
    /// restorable content).
    pub fn is_live(&self, i: usize) -> bool {
        self.live[i]
    }

    /// Number of spans inside the surviving subgraph.
    pub fn live_spans(&self) -> usize {
        self.live_spans
    }

    /// Fraction of the trace's spans pruned away — branches the
    /// counterfactual search provably cannot touch.
    pub fn pruned_span_fraction(&self, trace: &Trace) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        1.0 - self.live_spans as f64 / trace.len() as f64
    }

    /// Whether `service` survives pruning: at least one span affiliated
    /// with it (§3.5 affiliation — own spans, plus caller spans for
    /// callees) is restorable. A labelled fault's service must always
    /// survive, which the property suite asserts.
    pub fn service_survives(&self, trace: &Trace, service: Symbol) -> bool {
        for (i, s) in trace.iter() {
            if self.restore[i].is_none() {
                continue;
            }
            if s.service_sym() == service {
                return true;
            }
            if s.kind.is_caller()
                && trace
                    .children(i)
                    .iter()
                    .any(|&c| trace.span(c).service_sym() == service)
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind};

    fn profile_from(traces: &[Trace]) -> OpProfile {
        OpProfile::fit(traces)
    }

    fn two_branch_trace(slow_us: u64) -> Trace {
        let spans = vec![
            Span::builder(1, 1, "root", "GET /").time(0, 1_000 + slow_us).build(),
            Span::builder(1, 2, "fast", "op")
                .parent(1)
                .kind(SpanKind::Client)
                .time(100, 400)
                .build(),
            Span::builder(1, 3, "slow", "op")
                .parent(1)
                .kind(SpanKind::Client)
                .time(100, 100 + slow_us)
                .build(),
        ];
        Trace::assemble(spans).unwrap()
    }

    #[test]
    fn normal_trace_prunes_everything() {
        let normals: Vec<Trace> = (0..8).map(|_| two_branch_trace(300)).collect();
        let profile = profile_from(&normals);
        let t = two_branch_trace(300);
        let scan = SubtreeScan::scan(&t, &profile);
        assert_eq!(scan.live_spans(), 0);
        assert_eq!(scan.pruned_span_fraction(&t), 1.0);
        assert!(!scan.service_survives(&t, Symbol::intern("slow")));
    }

    #[test]
    fn anomalous_branch_survives_with_its_ancestors() {
        let normals: Vec<Trace> = (0..8).map(|_| two_branch_trace(300)).collect();
        let profile = profile_from(&normals);
        let t = two_branch_trace(50_000);
        let scan = SubtreeScan::scan(&t, &profile);
        // The slow span and the root (its ancestor) are live; the fast
        // sibling branch is pruned.
        assert!(scan.is_live(0), "root must survive as ancestor");
        let slow_idx = (0..t.len())
            .find(|&i| t.span(i).service == "slow")
            .unwrap();
        let fast_idx = (0..t.len())
            .find(|&i| t.span(i).service == "fast")
            .unwrap();
        assert!(scan.is_live(slow_idx));
        assert!(!scan.is_live(fast_idx), "normal sibling branch is pruned");
        assert!(scan.restore_target(slow_idx).is_some());
        assert!(scan.restore_target(fast_idx).is_none());
        assert!(scan.excess_us(slow_idx) > 40_000);
        assert!(scan.service_survives(&t, Symbol::intern("slow")));
        // The caller affiliation keeps the root service alive too: the
        // slow span's parent is a caller of "slow".
        assert!(scan.service_survives(&t, Symbol::intern("root")) || !t.span(0).kind.is_caller());
    }
}
