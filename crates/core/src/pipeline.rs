//! The end-to-end Sleuth pipeline (§3.1): detect → cluster → localise.

use sleuth_baselines::common::{OpProfile, RootCauseLocator};
use sleuth_cluster::{
    geometric_median, hdbscan, DistanceMatrix, HdbscanParams, TraceSetEncoder,
};
use sleuth_gnn::{AggregatorKind, EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth_trace::Trace;

use crate::anomaly::AnomalyDetector;
use crate::counterfactual::CounterfactualRca;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// GNN hyper-parameters.
    pub model: ModelConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Trace-set encoder ancestor horizon `d_max`.
    pub d_max: usize,
    /// HDBSCAN parameters for anomaly-trace clustering.
    pub hdbscan: HdbscanParams,
    /// Maximum services restored per counterfactual query.
    pub max_candidates: usize,
    /// Model seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            model: ModelConfig::default(),
            train: TrainConfig {
                epochs: 30,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            d_max: 3,
            hdbscan: HdbscanParams {
                min_cluster_size: 5,
                min_samples: 3,
                cluster_selection_epsilon: 0.0,
                allow_single_cluster: true,
            },
            max_candidates: 5,
            seed: 0,
        }
    }
}

impl PipelineConfig {
    /// A configuration using the GCN ablation aggregator (Sleuth-GCN).
    pub fn gcn() -> Self {
        PipelineConfig {
            model: ModelConfig {
                aggregator: AggregatorKind::Gcn,
                ..ModelConfig::default()
            },
            ..PipelineConfig::default()
        }
    }
}

/// Root cause verdict for one analysed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcaResult {
    /// Index of the trace in the analysed batch.
    pub trace_idx: usize,
    /// Predicted root-cause services.
    pub services: Vec<String>,
    /// Cluster the trace belonged to (`None` = noise / un-clustered).
    pub cluster: Option<isize>,
    /// Whether this trace was the cluster's representative (its RCA was
    /// computed rather than inherited).
    pub representative: bool,
}

/// The trained Sleuth system.
#[derive(Debug)]
pub struct SleuthPipeline {
    rca: CounterfactualRca,
    detector: AnomalyDetector,
    encoder: TraceSetEncoder,
    hdbscan_params: HdbscanParams,
}

impl SleuthPipeline {
    /// Train the full system on a (mostly healthy) trace corpus.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &[Trace], config: &PipelineConfig) -> Self {
        assert!(!train.is_empty(), "training corpus must be non-empty");
        let mut featurizer = Featurizer::new(config.model.sem_dim);
        let encoded: Vec<EncodedTrace> = train.iter().map(|t| featurizer.encode(t)).collect();
        let mut model = SleuthModel::new(&config.model, config.seed);
        model.train(&encoded, &config.train);
        Self::from_parts(model, featurizer, train, config)
    }

    /// Assemble a pipeline around an existing (e.g. pre-trained or
    /// fine-tuned) model; the profile and SLOs are fit from `corpus`.
    pub fn from_parts(
        model: SleuthModel,
        featurizer: Featurizer,
        corpus: &[Trace],
        config: &PipelineConfig,
    ) -> Self {
        let profile = OpProfile::fit(corpus);
        let detector = AnomalyDetector::from_profile(profile.clone());
        let mut rca = CounterfactualRca::new(model, featurizer, profile);
        rca.max_candidates = config.max_candidates;
        SleuthPipeline {
            rca,
            detector,
            encoder: TraceSetEncoder::new(config.d_max),
            hdbscan_params: config.hdbscan,
        }
    }

    /// The counterfactual localiser (single-trace interface).
    pub fn rca(&self) -> &CounterfactualRca {
        &self.rca
    }

    /// The anomaly detector.
    pub fn detector(&self) -> &AnomalyDetector {
        &self.detector
    }

    /// Analyse a batch of anomalous traces **with clustering** (§3.3):
    /// traces are clustered by the weighted-Jaccard distance; each
    /// cluster's geometric-median representative is localised and its
    /// root causes are generalised to the whole cluster. Noise traces
    /// are localised individually.
    pub fn analyze(&self, traces: &[Trace]) -> Vec<RcaResult> {
        if traces.is_empty() {
            return Vec::new();
        }
        let sets: Vec<_> = traces.iter().map(|t| self.encoder.encode(t)).collect();
        let dm = DistanceMatrix::from_sets(&sets);
        let clustering = hdbscan(&dm, &self.hdbscan_params);

        let mut results: Vec<Option<RcaResult>> = vec![None; traces.len()];
        for c in 0..clustering.n_clusters() as isize {
            let members = clustering.members(c);
            let rep = geometric_median(&dm, &members).expect("cluster non-empty");
            let services = self.rca.localize(&traces[rep]);
            for m in members {
                results[m] = Some(RcaResult {
                    trace_idx: m,
                    services: services.clone(),
                    cluster: Some(c),
                    representative: m == rep,
                });
            }
        }
        for i in clustering.noise() {
            results[i] = Some(RcaResult {
                trace_idx: i,
                services: self.rca.localize(&traces[i]),
                cluster: None,
                representative: true,
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every trace labelled"))
            .collect()
    }

    /// Analyse every trace individually (no clustering) — the paper's
    /// "w/o clustering" configuration.
    pub fn analyze_without_clustering(&self, traces: &[Trace]) -> Vec<RcaResult> {
        traces
            .iter()
            .enumerate()
            .map(|(i, t)| RcaResult {
                trace_idx: i,
                services: self.rca.localize(t),
                cluster: None,
                representative: true,
            })
            .collect()
    }

    /// Analyse with an externally supplied distance matrix (used to
    /// compare clustering metrics, e.g. DeepTraLog's SVDD distance).
    pub fn analyze_with_distance(&self, traces: &[Trace], dm: &DistanceMatrix) -> Vec<RcaResult> {
        if traces.is_empty() {
            return Vec::new();
        }
        let clustering = hdbscan(dm, &self.hdbscan_params);
        let mut results: Vec<Option<RcaResult>> = vec![None; traces.len()];
        for c in 0..clustering.n_clusters() as isize {
            let members = clustering.members(c);
            let rep = geometric_median(dm, &members).expect("cluster non-empty");
            let services = self.rca.localize(&traces[rep]);
            for m in members {
                results[m] = Some(RcaResult {
                    trace_idx: m,
                    services: services.clone(),
                    cluster: Some(c),
                    representative: m == rep,
                });
            }
        }
        for i in clustering.noise() {
            results[i] = Some(RcaResult {
                trace_idx: i,
                services: self.rca.localize(&traces[i]),
                cluster: None,
                representative: true,
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every trace labelled"))
            .collect()
    }
}

impl RootCauseLocator for SleuthPipeline {
    fn name(&self) -> &str {
        "sleuth"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        self.rca.localize(trace)
    }
}

// The serving runtime shares one fitted pipeline across worker threads
// behind an `Arc`; keep that guarantee from regressing silently.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SleuthPipeline>();
    assert_send_sync::<CounterfactualRca>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            train: TrainConfig {
                epochs: 15,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn fit_and_analyze_roundtrip() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(31);
        let train = builder.normal_traces(120).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());

        let queries = builder.anomaly_queries(3, 15);
        let traces: Vec<Trace> = queries
            .iter()
            .flat_map(|q| q.traces.iter().map(|t| t.trace.clone()))
            .collect();
        let results = pipeline.analyze(&traces);
        assert_eq!(results.len(), traces.len());
        for r in &results {
            assert!(!r.services.is_empty());
        }
    }

    #[test]
    fn clustering_reduces_rca_invocations() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(32);
        let train = builder.normal_traces(120).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());

        // Many traces from the same fault episode → few clusters.
        let queries = builder.anomaly_queries(1, 60);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        if traces.len() >= 10 {
            let results = pipeline.analyze(&traces);
            let reps = results.iter().filter(|r| r.representative).count();
            assert!(
                reps < traces.len(),
                "clustering did not reduce RCA invocations: {reps}/{}",
                traces.len()
            );
        }
    }

    #[test]
    fn cluster_members_share_root_causes() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(33);
        let train = builder.normal_traces(120).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        let queries = builder.anomaly_queries(1, 60);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        let results = pipeline.analyze(&traces);
        for c in results.iter().filter_map(|r| r.cluster) {
            let in_cluster: Vec<&RcaResult> =
                results.iter().filter(|r| r.cluster == Some(c)).collect();
            let first = &in_cluster[0].services;
            assert!(in_cluster.iter().all(|r| &r.services == first));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let app = presets::synthetic(16, 1);
        let train = CorpusBuilder::new(&app).seed(34).normal_traces(60).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        assert!(pipeline.analyze(&[]).is_empty());
    }

    #[test]
    fn without_clustering_every_trace_is_representative() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(35);
        let train = builder.normal_traces(60).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        let queries = builder.anomaly_queries(1, 10);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        let results = pipeline.analyze_without_clustering(&traces);
        assert!(results.iter().all(|r| r.representative && r.cluster.is_none()));
    }
}
