//! The end-to-end Sleuth pipeline (§3.1): detect → cluster → localise.

use sleuth_baselines::common::{OpProfile, RootCauseLocator};
use sleuth_cluster::{
    geometric_median, hdbscan, DistanceMatrix, HdbscanParams, TraceSetEncoder,
};
use sleuth_gnn::{AggregatorKind, EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth_par::ThreadPool;
use sleuth_trace::Trace;
use std::borrow::Borrow;

use crate::anomaly::AnomalyDetector;
use crate::counterfactual::CounterfactualRca;

/// Configuration of the full pipeline.
///
/// Construct via [`PipelineConfig::default`], the
/// [`PipelineConfig::builder`], or the [`PipelineConfig::gcn`] ablation
/// preset, then override fields as needed.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// GNN hyper-parameters (§3.4): aggregator kind (GIN by default,
    /// GCN for the ablation), hidden width, and the semantic embedding
    /// dimension fed by the §3.2 featurizer.
    pub model: ModelConfig,
    /// Training hyper-parameters for the Eq. 5 loss (§3.4): epochs,
    /// traces per mini-batch graph, learning rate, shuffling seed.
    pub train: TrainConfig,
    /// Trace-set encoder ancestor horizon `d_max` (§3.3): span
    /// identifiers include ancestor operation names up to this depth,
    /// so the weighted-Jaccard distance sees call-path context.
    pub d_max: usize,
    /// HDBSCAN parameters for anomaly-trace clustering (§3.3): minimum
    /// cluster size, core-distance sample count, selection epsilon,
    /// and whether a single all-encompassing cluster is acceptable.
    pub hdbscan: HdbscanParams,
    /// Maximum ranked candidate services *considered* per
    /// counterfactual localisation (§3.5). This caps the search space —
    /// prefixes and subsets of the top-ranked candidates — not how many
    /// services the final verdict may contain (after elimination the
    /// verdict holds between one and this many services).
    pub max_candidates: usize,
    /// Use the subtree-pruned, session-cached counterfactual search
    /// (on by default). `false` re-predicts the full trace per
    /// restoration step: identical verdicts (property-gated), legacy
    /// cost; useful for equivalence checks and benchmarking.
    pub prune: bool,
    /// Seed for GNN weight initialisation (§3.4); experiments are
    /// reproducible bit-for-bit on one platform given the same seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            model: ModelConfig::default(),
            train: TrainConfig {
                epochs: 30,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            d_max: 3,
            hdbscan: HdbscanParams {
                min_cluster_size: 5,
                min_samples: 3,
                cluster_selection_epsilon: 0.0,
                allow_single_cluster: true,
            },
            max_candidates: 5,
            prune: true,
            seed: 0,
        }
    }
}

impl PipelineConfig {
    /// A configuration using the GCN ablation aggregator (Sleuth-GCN).
    pub fn gcn() -> Self {
        PipelineConfig {
            model: ModelConfig {
                aggregator: AggregatorKind::Gcn,
                ..ModelConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    /// Per-field builder starting from the defaults, mirroring
    /// `ServeConfig::builder` on the serving side.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
        }
    }
}

/// Per-field builder for [`PipelineConfig`]; finish with
/// [`PipelineConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Set the GNN hyper-parameters (§3.4).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.config.model = model;
        self
    }

    /// Set the training hyper-parameters (§3.4, Eq. 5).
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.config.train = train;
        self
    }

    /// Set the trace-set ancestor horizon `d_max` (§3.3).
    pub fn d_max(mut self, d_max: usize) -> Self {
        self.config.d_max = d_max;
        self
    }

    /// Set the HDBSCAN clustering parameters (§3.3).
    pub fn hdbscan(mut self, hdbscan: HdbscanParams) -> Self {
        self.config.hdbscan = hdbscan;
        self
    }

    /// Set how many ranked candidates the counterfactual search
    /// considers (§3.5) — the search-space cap, not a cap on the
    /// verdict size.
    pub fn max_candidates(mut self, max_candidates: usize) -> Self {
        self.config.max_candidates = max_candidates;
        self
    }

    /// Enable or disable the subtree-pruned counterfactual fast path.
    pub fn prune(mut self, prune: bool) -> Self {
        self.config.prune = prune;
        self
    }

    /// Set the model initialisation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> PipelineConfig {
        self.config
    }
}

/// How [`SleuthPipeline::analyze`] groups traces before localisation.
#[derive(Debug, Clone, Copy, Default)]
pub enum ClusteringMode<'a> {
    /// Weighted-Jaccard distance + HDBSCAN clustering (§3.3, the
    /// default): each cluster's geometric-median representative is
    /// localised and its root causes generalise to the whole cluster.
    #[default]
    Jaccard,
    /// Localise every trace individually — the paper's
    /// "w/o clustering" configuration. Results are independent of how
    /// traces are batched together.
    Disabled,
    /// Cluster on a caller-supplied distance matrix (used to compare
    /// clustering metrics, e.g. DeepTraLog's SVDD distance).
    Precomputed(&'a DistanceMatrix),
}

/// Options for [`SleuthPipeline::analyze`], the single batch-analysis
/// entry point. `AnalyzeOptions::default()` reproduces the paper's
/// full pipeline (Jaccard clustering).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions<'a> {
    /// Trace grouping policy.
    pub clustering: ClusteringMode<'a>,
}

impl<'a> AnalyzeOptions<'a> {
    /// The paper's full pipeline: Jaccard + HDBSCAN clustering.
    pub fn clustered() -> Self {
        AnalyzeOptions {
            clustering: ClusteringMode::Jaccard,
        }
    }

    /// Per-trace localisation with no clustering.
    pub fn unclustered() -> Self {
        AnalyzeOptions {
            clustering: ClusteringMode::Disabled,
        }
    }

    /// Clustering over an externally computed distance matrix.
    pub fn with_distance(dm: &'a DistanceMatrix) -> Self {
        AnalyzeOptions {
            clustering: ClusteringMode::Precomputed(dm),
        }
    }
}

/// Root cause verdict for one analysed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcaResult {
    /// Index of the trace in the analysed batch.
    pub trace_idx: usize,
    /// Predicted root-cause services.
    pub services: Vec<String>,
    /// Cluster the trace belonged to (`None` = noise / un-clustered).
    pub cluster: Option<isize>,
    /// Whether this trace was the cluster's representative (its RCA was
    /// computed rather than inherited).
    pub representative: bool,
}

/// The trained Sleuth system.
#[derive(Debug)]
pub struct SleuthPipeline {
    rca: CounterfactualRca,
    detector: AnomalyDetector,
    encoder: TraceSetEncoder,
    hdbscan_params: HdbscanParams,
}

impl SleuthPipeline {
    /// Train the full system on a (mostly healthy) trace corpus.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &[Trace], config: &PipelineConfig) -> Self {
        assert!(!train.is_empty(), "training corpus must be non-empty");
        let mut featurizer = Featurizer::new(config.model.sem_dim);
        let encoded: Vec<EncodedTrace> = train.iter().map(|t| featurizer.encode(t)).collect();
        let mut model = SleuthModel::new(&config.model, config.seed);
        model.train(&encoded, &config.train);
        Self::from_parts(model, featurizer, train, config)
    }

    /// Assemble a pipeline around an existing (e.g. pre-trained or
    /// fine-tuned) model; the profile and SLOs are fit from `corpus`.
    pub fn from_parts(
        model: SleuthModel,
        featurizer: Featurizer,
        corpus: &[Trace],
        config: &PipelineConfig,
    ) -> Self {
        let profile = OpProfile::fit(corpus);
        let detector = AnomalyDetector::from_profile(profile.clone());
        let mut rca = CounterfactualRca::new(model, featurizer, profile);
        rca.max_candidates = config.max_candidates;
        rca.prune = config.prune;
        SleuthPipeline {
            rca,
            detector,
            encoder: TraceSetEncoder::new(config.d_max),
            hdbscan_params: config.hdbscan,
        }
    }

    /// The counterfactual localiser (single-trace interface).
    pub fn rca(&self) -> &CounterfactualRca {
        &self.rca
    }

    /// The anomaly detector.
    pub fn detector(&self) -> &AnomalyDetector {
        &self.detector
    }

    /// Mutable access to the anomaly detector, e.g. to widen
    /// [`AnomalyDetector::slo_multiplier`] before serving a workload
    /// whose healthy tail is fatter than the training sample's p95.
    pub fn detector_mut(&mut self) -> &mut AnomalyDetector {
        &mut self.detector
    }

    /// The weighted trace-set encoder used for clustering.
    pub fn encoder(&self) -> &TraceSetEncoder {
        &self.encoder
    }

    /// The process-wide string interner backing every span identifier
    /// the pipeline touches. Resolve a [`sleuth_trace::Symbol`] from an
    /// RCA result or profile key back to text through this handle.
    pub fn interner(&self) -> &'static sleuth_trace::Interner {
        sleuth_trace::Interner::global()
    }

    /// A copy of this pipeline with its detector SLOs and
    /// counterfactual restore targets replaced by `profile` — the
    /// incremental baseline-refresh hook. The trained GNN, featurizer
    /// vocabulary, encoder, and clustering parameters are reused
    /// untouched; only the normal-state baselines (per-operation
    /// duration medians, root SLO percentiles, §3.3/§3.5) change, so
    /// no refit is needed.
    pub fn with_baselines(&self, profile: OpProfile) -> SleuthPipeline {
        let mut detector = AnomalyDetector::from_profile(profile.clone());
        detector.slo_multiplier = self.detector.slo_multiplier;
        SleuthPipeline {
            rca: self.rca.with_profile(profile),
            detector,
            encoder: self.encoder,
            hdbscan_params: self.hdbscan_params,
        }
    }

    /// Analyse a batch of anomalous traces — the single batch entry
    /// point. The grouping policy comes from
    /// [`AnalyzeOptions::clustering`]:
    ///
    /// * [`ClusteringMode::Jaccard`] (default, §3.3) — traces are
    ///   clustered by the weighted-Jaccard distance; each cluster's
    ///   geometric-median representative is localised and its root
    ///   causes are generalised to the whole cluster. Noise traces are
    ///   localised individually.
    /// * [`ClusteringMode::Disabled`] — every trace is localised
    ///   individually.
    /// * [`ClusteringMode::Precomputed`] — clustering runs on a
    ///   caller-supplied distance matrix.
    ///
    /// `traces` is generic over anything that borrows a [`Trace`]
    /// (`&[Trace]`, `&[&Trace]`, `&[Arc<Trace>]`), so callers never
    /// need to deep-clone traces just to assemble a batch. Trace-set
    /// encoding, clustering, and per-representative localisation fan
    /// out across the global [`ThreadPool`]; results are bit-identical
    /// to a sequential run at any thread count.
    pub fn analyze<T>(&self, traces: &[T], options: AnalyzeOptions) -> Vec<RcaResult>
    where
        T: Borrow<Trace> + Sync,
    {
        if traces.is_empty() {
            return Vec::new();
        }
        let pool = ThreadPool::global();
        match options.clustering {
            ClusteringMode::Jaccard => {
                let sets = pool.par_map(traces, |t| self.encoder.encode(t.borrow()));
                let dm = DistanceMatrix::builder().pool(pool).build_from(&sets);
                self.localize_clustered(traces, &dm)
            }
            ClusteringMode::Disabled => pool
                .par_map(traces, |t| self.rca.localize(t.borrow()))
                .into_iter()
                .enumerate()
                .map(|(i, services)| RcaResult {
                    trace_idx: i,
                    services,
                    cluster: None,
                    representative: true,
                })
                .collect(),
            ClusteringMode::Precomputed(dm) => self.localize_clustered(traces, dm),
        }
    }

    /// Shared clustering path: HDBSCAN over `dm`, representative per
    /// cluster, inherited verdicts for members, per-trace verdicts for
    /// noise. Representatives and noise traces are localised in
    /// parallel (each verdict depends only on its own trace, so the
    /// fan-out keeps results identical to the sequential loop).
    fn localize_clustered<T>(&self, traces: &[T], dm: &DistanceMatrix) -> Vec<RcaResult>
    where
        T: Borrow<Trace> + Sync,
    {
        let pool = ThreadPool::global();
        let clustering = hdbscan(dm, &self.hdbscan_params);
        let cluster_ids: Vec<isize> = (0..clustering.n_clusters() as isize).collect();
        let per_cluster = pool.par_map(&cluster_ids, |&c| {
            let members = clustering.members(c);
            let rep = geometric_median(dm, &members).expect("cluster non-empty");
            let services = self.rca.localize(traces[rep].borrow());
            (members, rep, services)
        });
        let noise = clustering.noise();
        let noise_services = pool.par_map(&noise, |&i| self.rca.localize(traces[i].borrow()));

        let mut results: Vec<Option<RcaResult>> = vec![None; traces.len()];
        for (c, (members, rep, services)) in cluster_ids.into_iter().zip(per_cluster) {
            for m in members {
                results[m] = Some(RcaResult {
                    trace_idx: m,
                    services: services.clone(),
                    cluster: Some(c),
                    representative: m == rep,
                });
            }
        }
        for (&i, services) in noise.iter().zip(noise_services) {
            results[i] = Some(RcaResult {
                trace_idx: i,
                services,
                cluster: None,
                representative: true,
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every trace labelled"))
            .collect()
    }
}

impl RootCauseLocator for SleuthPipeline {
    fn name(&self) -> &str {
        "sleuth"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        self.rca.localize(trace)
    }
}

// The serving runtime shares one fitted pipeline across worker threads
// behind an `Arc`; keep that guarantee from regressing silently.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SleuthPipeline>();
    assert_send_sync::<CounterfactualRca>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            train: TrainConfig {
                epochs: 15,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn fit_and_analyze_roundtrip() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(31);
        let train = builder.normal_traces(120).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());

        let queries = builder.anomaly_queries(3, 15);
        let traces: Vec<Trace> = queries
            .iter()
            .flat_map(|q| q.traces.iter().map(|t| t.trace.clone()))
            .collect();
        let results = pipeline.analyze(&traces, AnalyzeOptions::default());
        assert_eq!(results.len(), traces.len());
        for r in &results {
            assert!(!r.services.is_empty());
        }
    }

    #[test]
    fn clustering_reduces_rca_invocations() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(32);
        let train = builder.normal_traces(120).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());

        // Many traces from the same fault episode → few clusters.
        let queries = builder.anomaly_queries(1, 60);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        if traces.len() >= 10 {
            let results = pipeline.analyze(&traces, AnalyzeOptions::clustered());
            let reps = results.iter().filter(|r| r.representative).count();
            assert!(
                reps < traces.len(),
                "clustering did not reduce RCA invocations: {reps}/{}",
                traces.len()
            );
        }
    }

    #[test]
    fn cluster_members_share_root_causes() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(33);
        let train = builder.normal_traces(120).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        let queries = builder.anomaly_queries(1, 60);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        let results = pipeline.analyze(&traces, AnalyzeOptions::default());
        for c in results.iter().filter_map(|r| r.cluster) {
            let in_cluster: Vec<&RcaResult> =
                results.iter().filter(|r| r.cluster == Some(c)).collect();
            let first = &in_cluster[0].services;
            assert!(in_cluster.iter().all(|r| &r.services == first));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let app = presets::synthetic(16, 1);
        let train = CorpusBuilder::new(&app).seed(34).normal_traces(60).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        let empty: &[Trace] = &[];
        assert!(pipeline.analyze(empty, AnalyzeOptions::default()).is_empty());
        assert!(pipeline.analyze(empty, AnalyzeOptions::unclustered()).is_empty());
    }

    #[test]
    fn without_clustering_every_trace_is_representative() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(35);
        let train = builder.normal_traces(60).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        let queries = builder.anomaly_queries(1, 10);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        let results = pipeline.analyze(&traces, AnalyzeOptions::unclustered());
        assert!(results.iter().all(|r| r.representative && r.cluster.is_none()));
    }

    #[test]
    fn borrowed_and_owned_batches_agree() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(36);
        let train = builder.normal_traces(60).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());
        let queries = builder.anomaly_queries(1, 8);
        let traces: Vec<Trace> = queries[0].traces.iter().map(|t| t.trace.clone()).collect();
        let owned = pipeline.analyze(&traces, AnalyzeOptions::unclustered());
        let borrowed: Vec<&Trace> = traces.iter().collect();
        assert_eq!(pipeline.analyze(&borrowed, AnalyzeOptions::unclustered()), owned);
        let shared: Vec<std::sync::Arc<Trace>> =
            traces.iter().cloned().map(std::sync::Arc::new).collect();
        assert_eq!(pipeline.analyze(&shared, AnalyzeOptions::unclustered()), owned);
        let sets: Vec<_> = traces.iter().map(|t| TraceSetEncoder::new(3).encode(t)).collect();
        let dm = DistanceMatrix::builder().build_from(&sets);
        assert_eq!(
            pipeline.analyze(&borrowed, AnalyzeOptions::with_distance(&dm)),
            pipeline.analyze(&traces, AnalyzeOptions::with_distance(&dm))
        );
    }

    #[test]
    fn builder_round_trips_every_field() {
        let config = PipelineConfig::builder()
            .d_max(5)
            .max_candidates(7)
            .prune(false)
            .seed(11)
            .train(TrainConfig {
                epochs: 3,
                batch_traces: 8,
                lr: 1e-3,
                seed: 2,
            })
            .build();
        assert_eq!(config.d_max, 5);
        assert_eq!(config.max_candidates, 7);
        assert!(!config.prune);
        assert!(PipelineConfig::default().prune, "pruning is on by default");
        assert_eq!(config.seed, 11);
        assert_eq!(config.train.epochs, 3);
        assert_eq!(config.model, PipelineConfig::default().model);
    }

    #[test]
    fn with_baselines_swaps_detector_without_refit() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(37);
        let train = builder.normal_traces(80).plain_traces();
        let pipeline = SleuthPipeline::fit(&train, &quick_config());

        // Refresh against a profile fit on 3x-slower versions of the
        // same traffic: traces that violated the old SLO pass the new.
        let slowed: Vec<Trace> = train
            .iter()
            .map(|t| {
                let spans = t
                    .spans()
                    .iter()
                    .cloned()
                    .map(|mut s| {
                        s.start_us *= 3;
                        s.end_us *= 3;
                        s
                    })
                    .collect();
                Trace::assemble(spans).unwrap()
            })
            .collect();
        let refreshed = pipeline.with_baselines(OpProfile::fit(&slowed));
        let was_flagged = slowed
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .count();
        assert!(
            was_flagged > slowed.len() / 2,
            "drift mostly invisible to the old SLO ({was_flagged}/{})",
            slowed.len()
        );
        // The refreshed SLO is the drifted p95, so at most the top ~5%
        // of the drifted population can still be flagged.
        let still_flagged = slowed
            .iter()
            .filter(|t| refreshed.detector().is_anomalous(t))
            .count();
        assert!(
            still_flagged * 10 <= slowed.len(),
            "refreshed baselines still flag drifted-healthy traffic ({still_flagged}/{})",
            slowed.len()
        );
        // The model itself is shared, not refit.
        assert_eq!(
            refreshed.rca().model().to_checkpoint().params,
            pipeline.rca().model().to_checkpoint().params
        );
    }
}
