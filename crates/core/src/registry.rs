//! Model registry (§4): the model server's lifecycle.
//!
//! The production deployment keeps GNN checkpoints in a centralised
//! store that training and inference workers pull from; models are
//! created, updated, **inherited** (a new model fine-tuned from a
//! pre-trained parent — the §6.5 transfer workflow) and retired.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sleuth_gnn::{Checkpoint, SleuthModel};

/// Lifecycle state of a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelStatus {
    /// Serving inference traffic.
    Active,
    /// Kept for lineage but no longer served.
    Retired,
}

/// One registered model version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Registry name.
    pub name: String,
    /// Monotonic version under that name.
    pub version: u32,
    /// Name/version of the parent this model was inherited from.
    pub parent: Option<(String, u32)>,
    /// Lifecycle state.
    pub status: ModelStatus,
    /// The checkpoint itself.
    pub checkpoint: Checkpoint,
}

/// In-process model registry with serde export.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRegistry {
    records: HashMap<String, Vec<ModelRecord>>,
}

impl ModelRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Register a new model under `name`; returns the assigned version.
    pub fn create(&mut self, name: &str, model: &SleuthModel) -> u32 {
        self.insert(name, model, None)
    }

    /// Register an updated version of an existing model (e.g. after
    /// periodic retraining).
    pub fn update(&mut self, name: &str, model: &SleuthModel) -> u32 {
        let parent = self
            .latest_version(name)
            .map(|v| (name.to_string(), v));
        self.insert(name, model, parent)
    }

    /// Register a model inherited (fine-tuned) from another lineage.
    ///
    /// # Panics
    ///
    /// Panics if the parent does not exist.
    pub fn inherit(&mut self, name: &str, model: &SleuthModel, parent: (&str, u32)) -> u32 {
        assert!(
            self.get(parent.0, parent.1).is_some(),
            "parent {}@{} not registered",
            parent.0,
            parent.1
        );
        self.insert(name, model, Some((parent.0.to_string(), parent.1)))
    }

    fn insert(&mut self, name: &str, model: &SleuthModel, parent: Option<(String, u32)>) -> u32 {
        let versions = self.records.entry(name.to_string()).or_default();
        let version = versions.last().map(|r| r.version + 1).unwrap_or(1);
        versions.push(ModelRecord {
            name: name.to_string(),
            version,
            parent,
            status: ModelStatus::Active,
            checkpoint: model.to_checkpoint(),
        });
        version
    }

    /// Fetch a specific version.
    pub fn get(&self, name: &str, version: u32) -> Option<&ModelRecord> {
        self.records
            .get(name)?
            .iter()
            .find(|r| r.version == version)
    }

    /// The latest *active* record under `name`.
    pub fn latest(&self, name: &str) -> Option<&ModelRecord> {
        self.records
            .get(name)?
            .iter()
            .rev()
            .find(|r| r.status == ModelStatus::Active)
    }

    fn latest_version(&self, name: &str) -> Option<u32> {
        self.records.get(name)?.last().map(|r| r.version)
    }

    /// Instantiate the latest active model under `name`.
    ///
    /// # Errors
    ///
    /// Returns a description when the name is unknown, every version is
    /// retired, or the checkpoint is corrupt.
    pub fn load(&self, name: &str) -> Result<SleuthModel, String> {
        let rec = self
            .latest(name)
            .ok_or_else(|| format!("no active model named {name}"))?;
        SleuthModel::from_checkpoint(&rec.checkpoint)
    }

    /// Retire a version; it remains for lineage queries.
    ///
    /// Returns whether the version existed.
    pub fn retire(&mut self, name: &str, version: u32) -> bool {
        if let Some(versions) = self.records.get_mut(name) {
            for r in versions.iter_mut() {
                if r.version == version {
                    r.status = ModelStatus::Retired;
                    return true;
                }
            }
        }
        false
    }

    /// The ancestry chain of a model, nearest parent first.
    pub fn lineage(&self, name: &str, version: u32) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        let mut cur = self.get(name, version).and_then(|r| r.parent.clone());
        while let Some((n, v)) = cur {
            out.push((n.clone(), v));
            cur = self.get(&n, v).and_then(|r| r.parent.clone());
        }
        out
    }

    /// Registered names.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.records.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_gnn::ModelConfig;

    fn model(seed: u64) -> SleuthModel {
        SleuthModel::new(&ModelConfig::default(), seed)
    }

    #[test]
    fn create_update_versioning() {
        let mut reg = ModelRegistry::new();
        assert_eq!(reg.create("prod", &model(1)), 1);
        assert_eq!(reg.update("prod", &model(2)), 2);
        assert_eq!(reg.latest("prod").unwrap().version, 2);
        assert_eq!(reg.get("prod", 1).unwrap().parent, None);
        assert_eq!(
            reg.get("prod", 2).unwrap().parent,
            Some(("prod".to_string(), 1))
        );
    }

    #[test]
    fn retire_hides_from_latest() {
        let mut reg = ModelRegistry::new();
        reg.create("m", &model(1));
        reg.update("m", &model(2));
        assert!(reg.retire("m", 2));
        assert_eq!(reg.latest("m").unwrap().version, 1);
        assert!(!reg.retire("m", 99));
    }

    #[test]
    fn inherit_builds_lineage() {
        let mut reg = ModelRegistry::new();
        reg.create("pretrained", &model(1));
        reg.inherit("sockshop", &model(2), ("pretrained", 1));
        reg.update("sockshop", &model(3));
        let lineage = reg.lineage("sockshop", 2);
        assert_eq!(
            lineage,
            vec![("sockshop".to_string(), 1), ("pretrained".to_string(), 1)]
        );
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn inherit_requires_parent() {
        let mut reg = ModelRegistry::new();
        reg.inherit("x", &model(1), ("ghost", 1));
    }

    #[test]
    fn load_roundtrip() {
        let mut reg = ModelRegistry::new();
        let m = model(5);
        reg.create("m", &m);
        let loaded = reg.load("m").unwrap();
        assert_eq!(loaded.to_checkpoint().params, m.to_checkpoint().params);
        assert!(reg.load("ghost").is_err());
    }

    #[test]
    fn registry_serde_roundtrip() {
        let mut reg = ModelRegistry::new();
        reg.create("a", &model(1));
        reg.create("b", &model(2));
        let json = serde_json::to_string(&reg).unwrap();
        let back: ModelRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.names(), vec!["a", "b"]);
        assert!(back.load("a").is_ok());
    }
}
