//! Sleuth: trace-based root cause analysis for large-scale
//! microservices with graph neural networks.
//!
//! This crate assembles the paper's full system (§3.1) out of the
//! workspace's substrates:
//!
//! 1. anomalous traces are detected against learned SLOs
//!    ([`anomaly::AnomalyDetector`]),
//! 2. they are clustered with the weighted-Jaccard trace distance and
//!    HDBSCAN, and only each cluster's geometric-median representative
//!    is analysed ([`pipeline::SleuthPipeline::analyze`]),
//! 3. the representative's root cause is localised with counterfactual
//!    queries over the trace GNN — services are iteratively restored to
//!    their normal state (median exclusive duration, no errors) until
//!    the model predicts a normal trace ([`counterfactual`]),
//! 4. trained models live in a [`registry::ModelRegistry`] supporting
//!    the §4 model-server lifecycle (create, update, inherit, retire)
//!    and the §6.5 transfer-learning workflow (pre-train on one
//!    application, fine-tune on another).
//!
//! # Example
//!
//! ```no_run
//! use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
//! use sleuth_synth::presets;
//! use sleuth_synth::workload::CorpusBuilder;
//!
//! let app = presets::synthetic(16, 1);
//! let builder = CorpusBuilder::new(&app).seed(7);
//! let train = builder.normal_traces(200).plain_traces();
//! let sleuth = SleuthPipeline::fit(&train, &PipelineConfig::default());
//!
//! let queries = builder.anomaly_queries(3, 20);
//! for q in &queries {
//!     let traces: Vec<_> = q.traces.iter().map(|t| &t.trace).collect();
//!     for result in sleuth.analyze(&traces, Default::default()) {
//!         println!("trace {} -> {:?}", result.trace_idx, result.services);
//!     }
//! }
//! ```

pub mod anomaly;
pub mod counterfactual;
pub mod pipeline;
pub mod prune;
pub mod registry;

pub use anomaly::AnomalyDetector;
pub use counterfactual::{CounterfactualRca, InstanceVerdict, RcaReport};
pub use prune::SubtreeScan;
pub use pipeline::{
    AnalyzeOptions, ClusteringMode, PipelineConfig, PipelineConfigBuilder, RcaResult,
    SleuthPipeline,
};
pub use registry::{ModelRegistry, ModelStatus};
