//! Counterfactual root cause localisation (§3.5).
//!
//! A counterfactual query asks what the trace's duration and error
//! status *would have been* had a subset of spans been in their normal
//! state. Sleuth aggregates spans by service (client spans affiliate
//! with both caller and callee, because network faults at the callee
//! surface in the caller's span), ranks services by exclusive errors
//! plus excess exclusive duration, and restores them one by one —
//! re-predicting the trace with the GNN generatively — until the trace
//! is predicted normal. The restored set is the root cause.

use std::collections::HashMap;
use std::sync::Mutex;

use sleuth_baselines::common::{OpKey, OpProfile, RootCauseLocator};
use sleuth_gnn::{Featurizer, SleuthModel};
use sleuth_par::ThreadPool;
use sleuth_trace::{exclusive, transform, Trace};

/// The Sleuth counterfactual localiser: a trained GNN plus the normal
/// profile it restores spans against.
#[derive(Debug)]
pub struct CounterfactualRca {
    model: SleuthModel,
    // Mutex (not RefCell) so the localiser — and the pipeline holding
    // it — is Sync and can serve RCA queries from worker threads
    // behind an `Arc`. Encoding mutates only the featurizer's
    // vocabulary cache, which is deterministic per span text, so
    // concurrent callers see identical encodings regardless of order.
    featurizer: Mutex<Featurizer>,
    profile: OpProfile,
    /// Maximum services restored before giving up (then the top-ranked
    /// candidate alone is reported).
    pub max_candidates: usize,
    /// Multiplier on the learned root p95 used as the "normal" bar.
    pub slo_multiplier: f64,
}

impl CounterfactualRca {
    /// Assemble the localiser from a trained model, its featurizer, and
    /// the normal-state profile.
    pub fn new(model: SleuthModel, featurizer: Featurizer, profile: OpProfile) -> Self {
        CounterfactualRca {
            model,
            featurizer: Mutex::new(featurizer),
            profile,
            max_candidates: 5,
            slo_multiplier: 1.0,
        }
    }

    /// A copy of this localiser restoring against a different
    /// normal-state `profile` — the incremental-refresh hook: the
    /// trained model and featurizer vocabulary are reused as-is, only
    /// the baselines (median exclusive durations, SLO percentiles)
    /// change.
    pub fn with_profile(&self, profile: OpProfile) -> CounterfactualRca {
        CounterfactualRca {
            model: self.model.clone(),
            featurizer: Mutex::new(self.featurizer.lock().expect("featurizer lock").clone()),
            profile,
            max_candidates: self.max_candidates,
            slo_multiplier: self.slo_multiplier,
        }
    }

    /// The trained model.
    pub fn model(&self) -> &SleuthModel {
        &self.model
    }

    /// The normal-state profile.
    pub fn profile(&self) -> &OpProfile {
        &self.profile
    }

    /// Services each span is affiliated with (§3.5): every span
    /// affiliates with its own service; *client* spans additionally
    /// affiliate with their callee services, because failures at the
    /// callee (e.g. network faults) surface in the caller's span
    /// without touching the callee's own spans.
    fn affiliations(trace: &Trace, i: usize) -> Vec<&str> {
        let s = trace.span(i);
        let mut out = vec![s.service.as_str()];
        if s.kind.is_caller() {
            for &c in trace.children(i) {
                let callee = trace.span(c).service.as_str();
                if !out.contains(&callee) {
                    out.push(callee);
                }
            }
        }
        out
    }

    /// Candidate services, most suspicious first: ranked by exclusive
    /// errors and excess exclusive duration of all affiliated spans.
    pub fn rank_candidates(&self, trace: &Trace) -> Vec<String> {
        let ex_d = exclusive::exclusive_durations(trace);
        let ex_e = exclusive::exclusive_errors(trace);
        let mut score: HashMap<String, f64> = HashMap::new();
        for (i, s) in trace.iter() {
            let median = self
                .profile
                .get(&OpKey::of(s))
                .map(|st| st.median_exclusive_us as f64)
                .unwrap_or(0.0);
            let excess = (ex_d[i] as f64 - median).max(0.0);
            // Exclusive errors whose propagation chain reaches the root
            // explain the trace's failure; broken-chain errors are
            // bystanders and get only a weak bonus.
            let err_bonus = if ex_e[i] {
                if Self::error_chain_to_root(trace, i) {
                    1e9
                } else {
                    1e5
                }
            } else {
                0.0
            };
            let weight = excess + err_bonus;
            // A client span's exclusive time is the network round trip
            // to its callee, so its excess is evidence *against the
            // callee* far more than against the caller (whose own
            // compute shows up in its server spans). The caller keeps a
            // small share to cover client-side stalls.
            let is_caller_span = s.kind.is_caller();
            for (a, svc) in Self::affiliations(trace, i).into_iter().enumerate() {
                let share = if !is_caller_span {
                    1.0
                } else if a == 0 {
                    0.2
                } else {
                    1.0
                };
                *score.entry(svc.to_string()).or_default() += weight * share;
            }
        }
        let mut ranked: Vec<(String, f64)> = score.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        ranked.into_iter().map(|(s, _)| s).collect()
    }

    /// Whether every ancestor of `i` (inclusive) up to the root carries
    /// an error — an unbroken propagation chain.
    fn error_chain_to_root(trace: &Trace, i: usize) -> bool {
        let mut cur = i;
        loop {
            if !trace.span(cur).is_error() {
                return false;
            }
            match trace.parent(cur) {
                Some(p) => cur = p,
                None => return true,
            }
        }
    }

    /// Overrides restoring every span *affiliated with* `service` to its
    /// normal state: exclusive duration = the operation's median, no
    /// exclusive error.
    fn restore_overrides(&self, trace: &Trace, service: &str, out: &mut Vec<(usize, f32, f32)>) {
        let ex_d = exclusive::exclusive_durations(trace);
        for (i, s) in trace.iter() {
            if Self::affiliations(trace, i).contains(&service) {
                let med = self
                    .profile
                    .get(&OpKey::of(s))
                    .map(|st| st.median_exclusive_us)
                    .unwrap_or(0);
                // Only spans meaningfully above their normal state are
                // restored: touching already-normal spans would shave
                // ordinary median-to-observation noise off the whole
                // service and masquerade as counterfactual savings.
                let anomalous_duration = ex_d[i] > med.saturating_mul(2);
                let target = if anomalous_duration { med } else { ex_d[i] };
                out.push((i, transform::scale_duration(target), 0.0));
            }
        }
    }

    /// Whether predicted `(duration µs, error prob)` meets the SLO.
    fn is_normal(&self, trace: &Trace, d_us: f32, e: f32) -> bool {
        let slo = self
            .profile
            .robust_root_slo_us(&OpKey::of(trace.span(trace.root())));
        let slow = slo != u64::MAX && d_us as f64 > slo as f64 * self.slo_multiplier;
        e < 0.5 && !slow
    }
}


/// Root-cause verdict at all three granularities (§3.5): services, and
/// the pods/nodes those services' spans ran on, read off the span
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceVerdict {
    /// Root-cause services.
    pub services: Vec<String>,
    /// Pods the root-cause services' spans ran on.
    pub pods: Vec<String>,
    /// Cluster nodes those pods were scheduled on.
    pub nodes: Vec<String>,
}

impl CounterfactualRca {
    /// Fraction of the best-achievable counterfactual savings a
    /// candidate prefix must deliver before it is accepted.
    const SAVINGS_COVERAGE: f32 = 0.9;

    /// Localise the root cause and expand it to pod and node
    /// granularity from the trace's placement attributes.
    pub fn localize_instances(&self, trace: &Trace) -> InstanceVerdict {
        let services = self.localize(trace);
        let mut verdict = InstanceVerdict {
            services,
            ..InstanceVerdict::default()
        };
        for (_, s) in trace.iter() {
            if verdict.services.contains(&s.service) {
                if !s.pod.is_empty() && !verdict.pods.contains(&s.pod) {
                    verdict.pods.push(s.pod.clone());
                }
                if !s.node.is_empty() && !verdict.nodes.contains(&s.node) {
                    verdict.nodes.push(s.node.clone());
                }
            }
        }
        verdict
    }
}

impl RootCauseLocator for CounterfactualRca {
    fn name(&self) -> &str {
        "sleuth"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        let enc = self.featurizer.lock().expect("featurizer lock").encode(trace);
        let candidates: Vec<String> = self
            .rank_candidates(trace)
            .into_iter()
            .take(self.max_candidates)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let actual = trace.total_duration_us() as f32;

        // Counterfactual for a set of restored services (structural
        // counterfactual with per-node abduction, §3.5).
        let predict_set = |set: &[&String]| {
            let mut overrides = Vec::new();
            for svc in set {
                self.restore_overrides(trace, svc, &mut overrides);
            }
            self.model.predict_counterfactual(&enc, &overrides)
        };

        // Best the model can explain: all candidates restored. Comparing
        // each prefix against this *relative* ceiling cancels whatever
        // share of the anomaly the model attributes to exogenous noise,
        // so a partially-blind model still separates contributing from
        // non-contributing candidates.
        let all_refs: Vec<&String> = candidates.iter().collect();
        let best = predict_set(&all_refs);
        let best_savings = (actual - best.root_duration_us()).max(0.0);
        let error_explainable = trace.is_error() && best.root_error_prob() < 0.5;

        let accept = |pred: &sleuth_gnn::TracePrediction| {
            let savings = (actual - pred.root_duration_us()).max(0.0);
            let duration_ok = savings >= Self::SAVINGS_COVERAGE * best_savings
                || self.is_normal(trace, pred.root_duration_us(), 0.0);
            let error_ok = !error_explainable || pred.root_error_prob() < 0.5;
            duration_ok && error_ok
        };

        // Smallest prefix of the ranking that explains as much as the
        // whole candidate set. The prefix predictions are independent
        // of each other, so they fan out across the pool and the first
        // accepted length is read off the ordered results — the same
        // `chosen` the sequential early-exit loop would find, at the
        // cost of predicting the (short) tail it would have skipped.
        let lengths: Vec<usize> = (1..=candidates.len()).collect();
        let prefix_preds = ThreadPool::global().par_map(&lengths, |&k| {
            let prefix: Vec<&String> = candidates[..k].iter().collect();
            predict_set(&prefix)
        });
        let chosen = prefix_preds
            .iter()
            .position(accept)
            .map(|p| p + 1)
            .unwrap_or(candidates.len());
        let mut kept: Vec<String> = candidates[..chosen].to_vec();

        // …then backward-eliminate candidates whose restoration adds
        // nothing (they rode in on the prefix).
        if kept.len() > 1 {
            let mut i = kept.len();
            while i > 0 {
                i -= 1;
                if kept.len() == 1 {
                    break;
                }
                let without: Vec<&String> =
                    kept.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, s)| s).collect();
                if accept(&predict_set(&without)) {
                    kept.remove(i);
                }
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_gnn::{EncodedTrace, ModelConfig, TrainConfig};
    use sleuth_synth::chaos::{ChaosEngine, Fault, FaultKind, FaultPlan, FaultTarget};
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;
    use sleuth_synth::Simulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn trained_rca() -> (CounterfactualRca, sleuth_synth::App) {
        let app = presets::synthetic(16, 1);
        let corpus = CorpusBuilder::new(&app).seed(21).normal_traces(200);
        let traces = corpus.plain_traces();
        let mut featurizer = Featurizer::new(8);
        let encoded: Vec<EncodedTrace> =
            traces.iter().map(|t| featurizer.encode(t)).collect();
        let mut model = SleuthModel::new(&ModelConfig::default(), 33);
        model.train(
            &encoded,
            &TrainConfig {
                epochs: 30,
                batch_traces: 32,
                lr: 1e-2,
                seed: 1,
            },
        );
        let profile = OpProfile::fit(&traces);
        (CounterfactualRca::new(model, featurizer, profile), app)
    }

    #[test]
    fn candidate_ranking_prefers_slow_service() {
        let (rca, app) = trained_rca();
        // Slow down one specific service massively.
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 60.0,
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut top_hits = 0;
        for i in 0..10 {
            let st = sim.simulate(0, &plan, 5000 + i, &mut rng);
            if st.ground_truth.services.is_empty() {
                continue;
            }
            let ranked = rca.rank_candidates(&st.trace);
            if ranked
                .first()
                .is_some_and(|s| st.ground_truth.services.contains(s))
            {
                top_hits += 1;
            }
        }
        assert!(top_hits >= 6, "top-ranked candidate hit only {top_hits}/10");
    }

    #[test]
    fn localize_finds_injected_services() {
        let (rca, app) = trained_rca();
        let chaos = ChaosEngine::default();
        let queries = CorpusBuilder::new(&app)
            .seed(22)
            .chaos(chaos)
            .anomaly_queries(10, 15);
        let mut hits = 0;
        let mut total = 0;
        for q in &queries {
            for st in &q.traces {
                total += 1;
                let pred = rca.localize(&st.trace);
                if pred.iter().any(|p| st.ground_truth.services.contains(p)) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 3 > total * 2,
            "sleuth found injected service in only {hits}/{total} traces"
        );
    }

    #[test]
    fn healthy_traces_restore_to_few_candidates() {
        let (rca, app) = trained_rca();
        let corpus = CorpusBuilder::new(&app).seed(23).normal_traces(5);
        for st in &corpus.traces {
            let pred = rca.localize(&st.trace);
            assert!(pred.len() <= rca.max_candidates);
        }
    }

    #[test]
    fn instance_verdict_expands_to_pods_and_nodes() {
        let (rca, app) = trained_rca();
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 60.0,
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let st = sim.simulate(0, &plan, 1, &mut rng);
        let verdict = rca.localize_instances(&st.trace);
        assert!(!verdict.services.is_empty());
        // Every predicted service contributes the pods/nodes its spans
        // actually ran on.
        for svc in &verdict.services {
            let spans: Vec<_> = st
                .trace
                .spans()
                .iter()
                .filter(|s| &s.service == svc)
                .collect();
            if !spans.is_empty() {
                assert!(spans.iter().any(|s| verdict.pods.contains(&s.pod)));
                assert!(spans.iter().any(|s| verdict.nodes.contains(&s.node)));
            }
        }
    }

    #[test]
    fn network_fault_affiliation_reaches_callee() {
        let (rca, app) = trained_rca();
        // Network fault on a mid-tier service: caller spans slow down.
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::NetworkDelay,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 300.0,
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut hit = false;
        for i in 0..10 {
            let st = sim.simulate(0, &plan, 6000 + i, &mut rng);
            if st.ground_truth.services.is_empty() {
                continue;
            }
            let ranked = rca.rank_candidates(&st.trace);
            if ranked
                .iter()
                .take(3)
                .any(|s| st.ground_truth.services.contains(s))
            {
                hit = true;
                break;
            }
        }
        assert!(hit, "callee never ranked for a network fault");
    }
}
