//! Counterfactual root cause localisation (§3.5).
//!
//! A counterfactual query asks what the trace's duration and error
//! status *would have been* had a subset of spans been in their normal
//! state. Sleuth aggregates spans by service (client spans affiliate
//! with both caller and callee, because network faults at the callee
//! surface in the caller's span), ranks services by exclusive errors
//! plus excess exclusive duration, and restores them one by one —
//! re-predicting the trace with the GNN — until the trace is predicted
//! normal. The restored set is the root cause.
//!
//! # Adaptive pruning (`prune`, on by default)
//!
//! The search's cost model changed in two ways relative to the naive
//! O(candidates × spans) loop, without changing a single answer:
//!
//! 1. **One [`SubtreeScan`] per localisation** fixes the restorable
//!    span set (anomalous exclusive duration or exclusive error) up
//!    front. Candidates with no restorable affiliated span are *pruned*:
//!    their restoration is the identity, so every query about them is
//!    answered from the observation with zero model evaluations.
//! 2. **One [`CfSession`] per localisation** replaces per-query
//!    encode+abduce: the observed pass runs once and each query
//!    recomputes only the ancestor closure of its (effective) override
//!    frontier — the scan's surviving subgraph. Query results are
//!    additionally memoised on the set of live candidates involved, so
//!    prefixes and elimination probes that differ only in pruned
//!    candidates cost nothing.
//!
//! The candidate ranking and the accept/eliminate control flow are
//! bit-identical in both modes — pruning reduces *work*, never
//! *answers* — which is what lets the property suite assert pruned ≡
//! unpruned across every synthetic scenario rather than approximately.

use std::collections::HashMap;
use std::sync::Mutex;

use sleuth_baselines::common::{OpKey, OpProfile, RootCauseLocator};
use sleuth_gnn::{CfRoot, CfSession, EncodedTrace, Featurizer, SleuthModel};
use sleuth_par::ThreadPool;
use sleuth_trace::{Symbol, Trace};

use crate::prune::SubtreeScan;

/// The Sleuth counterfactual localiser: a trained GNN plus the normal
/// profile it restores spans against.
#[derive(Debug)]
pub struct CounterfactualRca {
    model: SleuthModel,
    // Mutex (not RefCell) so the localiser — and the pipeline holding
    // it — is Sync and can serve RCA queries from worker threads
    // behind an `Arc`. Encoding mutates only the featurizer's
    // vocabulary cache, which is deterministic per span text, so
    // concurrent callers see identical encodings regardless of order.
    featurizer: Mutex<Featurizer>,
    profile: OpProfile,
    /// Maximum number of ranked candidate services *considered* per
    /// localisation. The restoration search only ever probes prefixes
    /// and subsets of this many top-ranked candidates; it does not cap
    /// how many of them end up restored (after elimination, anywhere
    /// from one to all of them can be reported).
    pub max_candidates: usize,
    /// Multiplier on the learned root p95 used as the "normal" bar.
    pub slo_multiplier: f64,
    /// Use the subtree-pruned, session-cached fast path (module docs).
    /// `false` runs every query as an independent full-trace
    /// counterfactual — same answers, legacy cost; kept for equivalence
    /// gates and benchmarking.
    pub prune: bool,
}

/// Outcome of one localisation with its cost/pruning telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RcaReport {
    /// The root-cause services (what [`CounterfactualRca::localize`]
    /// returns).
    pub services: Vec<String>,
    /// Counterfactual model evaluations performed (memo hits and
    /// identity queries are free and not counted).
    pub predict_calls: u64,
    /// Candidate services considered.
    pub candidates: usize,
    /// Candidates pruned outright (no restorable affiliated span).
    pub pruned_candidates: usize,
    /// Fraction of the trace's spans outside the surviving subgraph.
    pub pruned_span_fraction: f64,
    /// Spans in the trace.
    pub spans: usize,
}

impl CounterfactualRca {
    /// Assemble the localiser from a trained model, its featurizer, and
    /// the normal-state profile.
    pub fn new(model: SleuthModel, featurizer: Featurizer, profile: OpProfile) -> Self {
        CounterfactualRca {
            model,
            featurizer: Mutex::new(featurizer),
            profile,
            max_candidates: 5,
            slo_multiplier: 1.0,
            prune: true,
        }
    }

    /// A copy of this localiser restoring against a different
    /// normal-state `profile` — the incremental-refresh hook: the
    /// trained model and featurizer vocabulary are reused as-is, only
    /// the baselines (median exclusive durations, SLO percentiles)
    /// change.
    pub fn with_profile(&self, profile: OpProfile) -> CounterfactualRca {
        CounterfactualRca {
            model: self.model.clone(),
            featurizer: Mutex::new(self.featurizer.lock().expect("featurizer lock").clone()),
            profile,
            max_candidates: self.max_candidates,
            slo_multiplier: self.slo_multiplier,
            prune: self.prune,
        }
    }

    /// The trained model.
    pub fn model(&self) -> &SleuthModel {
        &self.model
    }

    /// The normal-state profile.
    pub fn profile(&self) -> &OpProfile {
        &self.profile
    }

    /// Services each span is affiliated with (§3.5): every span
    /// affiliates with its own service; *client* spans additionally
    /// affiliate with their callee services, because failures at the
    /// callee (e.g. network faults) surface in the caller's span
    /// without touching the callee's own spans.
    fn affiliations(trace: &Trace, i: usize) -> Vec<Symbol> {
        let s = trace.span(i);
        let mut out = vec![s.service_sym()];
        if s.kind.is_caller() {
            for &c in trace.children(i) {
                let callee = trace.span(c).service_sym();
                if !out.contains(&callee) {
                    out.push(callee);
                }
            }
        }
        out
    }

    /// Whether span `i` is affiliated with `service` (allocation-free
    /// form of [`Self::affiliations`] membership).
    fn affiliated_with(trace: &Trace, i: usize, service: Symbol) -> bool {
        let s = trace.span(i);
        s.service_sym() == service
            || (s.kind.is_caller()
                && trace
                    .children(i)
                    .iter()
                    .any(|&c| trace.span(c).service_sym() == service))
    }

    /// Candidate services as interned symbols, most suspicious first:
    /// ranked by exclusive errors and excess exclusive duration of all
    /// affiliated spans.
    pub fn rank_candidate_syms(&self, trace: &Trace) -> Vec<Symbol> {
        let ex_d = sleuth_trace::exclusive::exclusive_durations(trace);
        let ex_e = sleuth_trace::exclusive::exclusive_errors(trace);
        let mut score: HashMap<Symbol, f64> = HashMap::new();
        for (i, s) in trace.iter() {
            let median = self
                .profile
                .get(&OpKey::of(s))
                .map(|st| st.median_exclusive_us as f64)
                .unwrap_or(0.0);
            let excess = (ex_d[i] as f64 - median).max(0.0);
            // Exclusive errors whose propagation chain reaches the root
            // explain the trace's failure; broken-chain errors are
            // bystanders and get only a weak bonus.
            let err_bonus = if ex_e[i] {
                if Self::error_chain_to_root(trace, i) {
                    1e9
                } else {
                    1e5
                }
            } else {
                0.0
            };
            let weight = excess + err_bonus;
            // A client span's exclusive time is the network round trip
            // to its callee, so its excess is evidence *against the
            // callee* far more than against the caller (whose own
            // compute shows up in its server spans). The caller keeps a
            // small share to cover client-side stalls.
            let is_caller_span = s.kind.is_caller();
            for (a, svc) in Self::affiliations(trace, i).into_iter().enumerate() {
                let share = if !is_caller_span {
                    1.0
                } else if a == 0 {
                    0.2
                } else {
                    1.0
                };
                *score.entry(svc).or_default() += weight * share;
            }
        }
        let mut ranked: Vec<(Symbol, f64)> = score.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then_with(|| a.0.as_str().cmp(b.0.as_str()))
        });
        ranked.into_iter().map(|(s, _)| s).collect()
    }

    /// Candidate services, most suspicious first, as owned strings
    /// (allocating convenience wrapper over
    /// [`Self::rank_candidate_syms`] — the serve degraded path and
    /// external callers want display names).
    pub fn rank_candidates(&self, trace: &Trace) -> Vec<String> {
        self.rank_candidate_syms(trace)
            .into_iter()
            .map(|s| s.as_str().to_string())
            .collect()
    }

    /// Whether every ancestor of `i` (inclusive) up to the root carries
    /// an error — an unbroken propagation chain.
    fn error_chain_to_root(trace: &Trace, i: usize) -> bool {
        let mut cur = i;
        loop {
            if !trace.span(cur).is_error() {
                return false;
            }
            match trace.parent(cur) {
                Some(p) => cur = p,
                None => return true,
            }
        }
    }

    /// Overrides restoring every span *affiliated with* `service` to its
    /// normal state: exclusive duration = the operation's median, no
    /// exclusive error. Only restorable spans (per the `scan`) are
    /// emitted — for the rest the restoration is the identity and the
    /// counterfactual engine would discard it anyway.
    fn restore_overrides(
        trace: &Trace,
        scan: &SubtreeScan,
        service: Symbol,
        out: &mut Vec<(usize, f32, f32)>,
    ) {
        for i in 0..trace.len() {
            if let Some((d, e)) = scan.restore_target(i) {
                if Self::affiliated_with(trace, i, service) {
                    out.push((i, d, e));
                }
            }
        }
    }

    /// Whether predicted `(duration µs, error prob)` meets the SLO.
    fn is_normal(&self, trace: &Trace, d_us: f32, e: f32) -> bool {
        let slo = self
            .profile
            .robust_root_slo_us(&OpKey::of(trace.span(trace.root())));
        let slow = slo != u64::MAX && d_us as f64 > slo as f64 * self.slo_multiplier;
        e < 0.5 && !slow
    }
}

/// Root-cause verdict at all three granularities (§3.5): services, and
/// the pods/nodes those services' spans ran on, read off the span
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceVerdict {
    /// Root-cause services.
    pub services: Vec<String>,
    /// Pods the root-cause services' spans ran on.
    pub pods: Vec<String>,
    /// Cluster nodes those pods were scheduled on.
    pub nodes: Vec<String>,
}

/// Shared query engine for one localisation: owns the session, the
/// candidate-set memo, and the call counter. A candidate set is
/// identified by the bitmask of its *live* (non-pruned) members — two
/// sets differing only in pruned candidates are the same query.
struct QueryEngine<'a> {
    rca: &'a CounterfactualRca,
    enc: &'a EncodedTrace,
    per_cand: &'a [Vec<(usize, f32, f32)>],
    observed: CfRoot,
    session: Option<CfSession<'a>>,
    memo: HashMap<u128, CfRoot>,
    ov_buf: Vec<(usize, f32, f32)>,
    calls: u64,
}

impl QueryEngine<'_> {
    /// Counterfactual root for the candidate subset `sel` (indices into
    /// the ranked candidate list).
    fn query(&mut self, sel: impl Iterator<Item = usize>) -> CfRoot {
        self.ov_buf.clear();
        let maskable = self.per_cand.len() <= 128;
        let mut mask = 0u128;
        for k in sel {
            let ov = &self.per_cand[k];
            if ov.is_empty() {
                continue; // pruned candidate: restoring it is the identity
            }
            if maskable {
                mask |= 1 << k;
            }
            self.ov_buf.extend_from_slice(ov);
        }
        match self.session.as_mut() {
            Some(session) => {
                if self.ov_buf.is_empty() {
                    return self.observed;
                }
                if maskable {
                    if let Some(&r) = self.memo.get(&mask) {
                        return r;
                    }
                }
                self.calls += 1;
                let r = session.predict_root(&self.ov_buf);
                if maskable {
                    self.memo.insert(mask, r);
                }
                r
            }
            // Legacy mode: every query is an independent one-shot
            // full-trace counterfactual (same answers, honest cost).
            None => {
                self.calls += 1;
                let p = self.rca.model().predict_counterfactual(self.enc, &self.ov_buf);
                CfRoot {
                    d_scaled: p.d_scaled[0],
                    error_prob: p.e_prob[0],
                }
            }
        }
    }
}

impl CounterfactualRca {
    /// Fraction of the best-achievable counterfactual savings a
    /// candidate prefix must deliver before it is accepted.
    const SAVINGS_COVERAGE: f32 = 0.9;

    /// Localise the root cause and expand it to pod and node
    /// granularity from the trace's placement attributes.
    pub fn localize_instances(&self, trace: &Trace) -> InstanceVerdict {
        let services = self.localize(trace);
        let mut verdict = InstanceVerdict {
            services,
            ..InstanceVerdict::default()
        };
        for (_, s) in trace.iter() {
            if verdict.services.iter().any(|v| s.service == *v) {
                if !s.pod.is_empty() && !verdict.pods.iter().any(|p| s.pod == *p) {
                    verdict.pods.push(s.pod.to_string());
                }
                if !s.node.is_empty() && !verdict.nodes.iter().any(|n| s.node == *n) {
                    verdict.nodes.push(s.node.to_string());
                }
            }
        }
        verdict
    }

    /// Localise the root cause, returning the services together with
    /// the cost/pruning telemetry of the search.
    pub fn localize_report(&self, trace: &Trace) -> RcaReport {
        let enc = self.featurizer.lock().expect("featurizer lock").encode(trace);
        let scan = SubtreeScan::scan(trace, &self.profile);
        let candidates: Vec<Symbol> = self
            .rank_candidate_syms(trace)
            .into_iter()
            .take(self.max_candidates)
            .collect();
        let mut report = RcaReport {
            candidates: candidates.len(),
            pruned_span_fraction: scan.pruned_span_fraction(trace),
            spans: trace.len(),
            ..RcaReport::default()
        };
        if candidates.is_empty() {
            return report;
        }
        let n = candidates.len();

        // The restorable span set is fixed per trace, so each
        // candidate's override list is computed exactly once.
        let per_cand: Vec<Vec<(usize, f32, f32)>> = candidates
            .iter()
            .map(|&svc| {
                let mut ov = Vec::new();
                Self::restore_overrides(trace, &scan, svc, &mut ov);
                ov
            })
            .collect();
        report.pruned_candidates = per_cand.iter().filter(|ov| ov.is_empty()).count();

        let actual = trace.total_duration_us() as f32;
        let mut eng = QueryEngine {
            rca: self,
            enc: &enc,
            per_cand: &per_cand,
            observed: CfRoot {
                d_scaled: enc.d_scaled[0],
                error_prob: enc.e[0],
            },
            session: self.prune.then(|| CfSession::new(&self.model, &enc)),
            memo: HashMap::new(),
            ov_buf: Vec::new(),
            calls: 0,
        };

        // Best the model can explain: all candidates restored. Comparing
        // each prefix against this *relative* ceiling cancels whatever
        // share of the anomaly the model attributes to exogenous noise,
        // so a partially-blind model still separates contributing from
        // non-contributing candidates.
        let best = eng.query(0..n);
        let best_savings = (actual - best.duration_us()).max(0.0);
        let error_explainable = trace.is_error() && best.error_prob < 0.5;

        let accept = |pred: CfRoot| {
            let savings = (actual - pred.duration_us()).max(0.0);
            let duration_ok = savings >= Self::SAVINGS_COVERAGE * best_savings
                || self.is_normal(trace, pred.duration_us(), 0.0);
            let error_ok = !error_explainable || pred.error_prob < 0.5;
            duration_ok && error_ok
        };

        // Smallest prefix of the ranking that explains as much as the
        // whole candidate set.
        let chosen = if self.prune {
            // Sequential with early exit: identity/memoised prefixes are
            // free, and the tail after the first accepted length is
            // never predicted at all.
            (1..=n)
                .find(|&k| accept(eng.query(0..k)))
                .unwrap_or(n)
        } else {
            // Legacy fan-out: all prefixes predicted across the pool,
            // the first accepted length read off the ordered results.
            let lengths: Vec<usize> = (1..=n).collect();
            let prefix_preds = ThreadPool::global().par_map(&lengths, |&k| {
                let mut ov = Vec::new();
                for cand in &per_cand[..k] {
                    ov.extend_from_slice(cand);
                }
                let p = self.model.predict_counterfactual(&enc, &ov);
                CfRoot {
                    d_scaled: p.d_scaled[0],
                    error_prob: p.e_prob[0],
                }
            });
            eng.calls += n as u64;
            prefix_preds
                .iter()
                .position(|&p| accept(p))
                .map(|p| p + 1)
                .unwrap_or(n)
        };
        let mut kept: Vec<usize> = (0..chosen).collect();

        // …then backward-eliminate candidates whose restoration adds
        // nothing (they rode in on the prefix).
        if kept.len() > 1 {
            let mut i = kept.len();
            while i > 0 {
                i -= 1;
                if kept.len() == 1 {
                    break;
                }
                let without: Vec<usize> = kept
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, &k)| k)
                    .collect();
                if accept(eng.query(without.into_iter())) {
                    kept.remove(i);
                }
            }
        }

        report.services = kept
            .into_iter()
            .map(|k| candidates[k].as_str().to_string())
            .collect();
        report.predict_calls = eng.calls;
        report
    }
}

impl RootCauseLocator for CounterfactualRca {
    fn name(&self) -> &str {
        "sleuth"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        self.localize_report(trace).services
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_gnn::{EncodedTrace, ModelConfig, TrainConfig};
    use sleuth_synth::chaos::{ChaosEngine, Fault, FaultKind, FaultPlan, FaultTarget};
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;
    use sleuth_synth::Simulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn trained_rca() -> (CounterfactualRca, sleuth_synth::App) {
        let app = presets::synthetic(16, 1);
        let corpus = CorpusBuilder::new(&app).seed(21).normal_traces(200);
        let traces = corpus.plain_traces();
        let mut featurizer = Featurizer::new(8);
        let encoded: Vec<EncodedTrace> =
            traces.iter().map(|t| featurizer.encode(t)).collect();
        let mut model = SleuthModel::new(&ModelConfig::default(), 33);
        model.train(
            &encoded,
            &TrainConfig {
                epochs: 30,
                batch_traces: 32,
                lr: 1e-2,
                seed: 1,
            },
        );
        let profile = OpProfile::fit(&traces);
        (CounterfactualRca::new(model, featurizer, profile), app)
    }

    #[test]
    fn candidate_ranking_prefers_slow_service() {
        let (rca, app) = trained_rca();
        // Slow down one specific service massively.
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 60.0,
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut top_hits = 0;
        for i in 0..10 {
            let st = sim.simulate(0, &plan, 5000 + i, &mut rng);
            if st.ground_truth.services.is_empty() {
                continue;
            }
            let ranked = rca.rank_candidates(&st.trace);
            if ranked
                .first()
                .is_some_and(|s| st.ground_truth.services.contains(s))
            {
                top_hits += 1;
            }
        }
        assert!(top_hits >= 6, "top-ranked candidate hit only {top_hits}/10");
    }

    #[test]
    fn localize_finds_injected_services() {
        let (rca, app) = trained_rca();
        let chaos = ChaosEngine::default();
        let queries = CorpusBuilder::new(&app)
            .seed(22)
            .chaos(chaos)
            .anomaly_queries(10, 15);
        let mut hits = 0;
        let mut total = 0;
        for q in &queries {
            for st in &q.traces {
                total += 1;
                let pred = rca.localize(&st.trace);
                if pred.iter().any(|p| st.ground_truth.services.contains(p)) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 3 > total * 2,
            "sleuth found injected service in only {hits}/{total} traces"
        );
    }

    #[test]
    fn pruned_localization_matches_unpruned_exactly() {
        let (mut rca, app) = trained_rca();
        let chaos = ChaosEngine::default();
        let queries = CorpusBuilder::new(&app)
            .seed(29)
            .chaos(chaos)
            .anomaly_queries(6, 9);
        for q in &queries {
            for st in &q.traces {
                rca.prune = true;
                let pruned = rca.localize_report(&st.trace);
                rca.prune = false;
                let unpruned = rca.localize_report(&st.trace);
                assert_eq!(
                    pruned.services, unpruned.services,
                    "pruning changed the verdict"
                );
                assert!(
                    pruned.predict_calls <= unpruned.predict_calls,
                    "pruned path used {} calls vs {} unpruned",
                    pruned.predict_calls,
                    unpruned.predict_calls
                );
            }
        }
    }

    #[test]
    fn healthy_traces_restore_to_few_candidates() {
        let (rca, app) = trained_rca();
        let corpus = CorpusBuilder::new(&app).seed(23).normal_traces(5);
        for st in &corpus.traces {
            let pred = rca.localize(&st.trace);
            assert!(pred.len() <= rca.max_candidates);
        }
    }

    #[test]
    fn instance_verdict_expands_to_pods_and_nodes() {
        let (rca, app) = trained_rca();
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 60.0,
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let st = sim.simulate(0, &plan, 1, &mut rng);
        let verdict = rca.localize_instances(&st.trace);
        assert!(!verdict.services.is_empty());
        // Every predicted service contributes the pods/nodes its spans
        // actually ran on.
        for svc in &verdict.services {
            let spans: Vec<_> = st
                .trace
                .spans()
                .iter()
                .filter(|s| s.service == **svc)
                .collect();
            if !spans.is_empty() {
                assert!(spans.iter().any(|s| verdict.pods.iter().any(|p| s.pod == *p)));
                assert!(spans.iter().any(|s| verdict.nodes.iter().any(|n| s.node == *n)));
            }
        }
    }

    #[test]
    fn network_fault_affiliation_reaches_callee() {
        let (rca, app) = trained_rca();
        // Network fault on a mid-tier service: caller spans slow down.
        let victim = app.flows[0].nodes[1].service;
        let plan = FaultPlan {
            faults: (0..app.services[victim].pods.len())
                .map(|p| Fault {
                    kind: FaultKind::NetworkDelay,
                    target: FaultTarget::Pod {
                        service: victim,
                        pod: p,
                    },
                    severity: 300.0,
                })
                .collect(),
        };
        let sim = Simulator::new(&app);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut hit = false;
        for i in 0..10 {
            let st = sim.simulate(0, &plan, 6000 + i, &mut rng);
            if st.ground_truth.services.is_empty() {
                continue;
            }
            let ranked = rca.rank_candidates(&st.trace);
            if ranked
                .iter()
                .take(3)
                .any(|s| st.ground_truth.services.contains(s))
            {
                hit = true;
                break;
            }
        }
        assert!(hit, "callee never ranked for a network fault");
    }
}
