//! Evaluation harness: metrics and experiment drivers (§6).
//!
//! This crate regenerates every quantitative table and figure in the
//! paper's evaluation from the workspace's own substrates:
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 1 — n-sigma rule degrades with scale | [`experiments::fig1_nsigma`] |
//! | Fig. 3 — span-duration CDF | [`experiments::fig3_duration_cdf`] |
//! | Table 1 — benchmark specifications | [`experiments::table1_specs`] |
//! | Table 3 — RCA accuracy across algorithms | [`experiments::table3_accuracy`] |
//! | Fig. 5 — training/inference scaling vs Sage | [`experiments::fig5_scaling`] |
//! | Fig. 6 — accuracy under live service updates | [`experiments::fig6_updates`] |
//! | Fig. 7 — transfer learning | [`experiments::fig7_transfer`] |
//! | Fig. 8 — sensitivity to span semantics | [`experiments::fig8_semantics`] |
//!
//! Absolute numbers differ from the paper (this substrate is a
//! simulator on CPU, not a 100-node cluster with V100s); the comparison
//! target is the *shape*: which method wins, how metrics move with
//! scale, where the crossovers sit. Experiments run at a reduced CI
//! scale by default; set `SLEUTH_FULL=1` for larger corpora.

pub mod experiments;
pub mod metrics;
pub mod nsigma;
pub mod report;

pub use metrics::{EvalAccumulator, QueryOutcome};
pub use nsigma::NSigmaRule;
pub use report::Table;
