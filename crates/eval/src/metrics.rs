//! Accuracy metrics (§6.1.5).
//!
//! Each RCA query predicts a set of root-cause instances which is
//! compared against the injection-log ground truth. TP/FP/FN are
//! aggregated across queries into the F₁ score; ACC is the fraction of
//! queries whose prediction matches the truth *exactly*.

use std::collections::BTreeSet;

/// Outcome of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// True positives in this query.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// Whether prediction == truth exactly.
    pub exact: bool,
}

/// Accumulates TP/FP/FN and exact matches across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalAccumulator {
    tp: usize,
    fp: usize,
    fn_: usize,
    exact: usize,
    queries: usize,
}

impl EvalAccumulator {
    /// Start an empty accumulator.
    pub fn new() -> Self {
        EvalAccumulator::default()
    }

    /// Score one query and fold it in.
    pub fn add_query<S: AsRef<str>>(&mut self, predicted: &[S], truth: &BTreeSet<String>) -> QueryOutcome {
        let pred: BTreeSet<&str> = predicted.iter().map(|s| s.as_ref()).collect();
        let tp = pred.iter().filter(|p| truth.contains(**p)).count();
        let fp = pred.len() - tp;
        let fn_ = truth.len() - tp;
        let exact = fp == 0 && fn_ == 0;
        self.tp += tp;
        self.fp += fp;
        self.fn_ += fn_;
        if exact {
            self.exact += 1;
        }
        self.queries += 1;
        QueryOutcome { tp, fp, fn_, exact }
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &EvalAccumulator) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.exact += other.exact;
        self.queries += other.queries;
    }

    /// Number of queries scored.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// `F₁ = 2·TP / (2·TP + FP + FN)`; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let denom = 2 * self.tp + self.fp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            2.0 * self.tp as f64 / denom as f64
        }
    }

    /// Exact-match accuracy; 0 when no queries were scored.
    pub fn accuracy(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.exact as f64 / self.queries as f64
        }
    }

    /// Precision; 0 when undefined.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 0 when undefined.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_query() {
        let mut acc = EvalAccumulator::new();
        let o = acc.add_query(&["a", "b"], &truth(&["a", "b"]));
        assert!(o.exact);
        assert_eq!(acc.f1(), 1.0);
        assert_eq!(acc.accuracy(), 1.0);
        assert_eq!(acc.precision(), 1.0);
        assert_eq!(acc.recall(), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let mut acc = EvalAccumulator::new();
        let o = acc.add_query(&["a", "c"], &truth(&["a", "b"]));
        assert_eq!((o.tp, o.fp, o.fn_), (1, 1, 1));
        assert!(!o.exact);
        // F1 = 2/(2+1+1) = 0.5
        assert!((acc.f1() - 0.5).abs() < 1e-12);
        assert_eq!(acc.accuracy(), 0.0);
    }

    #[test]
    fn empty_prediction_counts_fn() {
        let mut acc = EvalAccumulator::new();
        let empty: &[&str] = &[];
        acc.add_query(empty, &truth(&["a"]));
        assert_eq!(acc.f1(), 0.0);
        assert_eq!(acc.recall(), 0.0);
    }

    #[test]
    fn duplicates_in_prediction_collapse() {
        let mut acc = EvalAccumulator::new();
        let o = acc.add_query(&["a", "a"], &truth(&["a"]));
        assert!(o.exact);
        assert_eq!(o.fp, 0);
    }

    #[test]
    fn accuracy_stricter_than_f1() {
        // Two queries, each with one TP and one FP: F1 positive, ACC 0.
        let mut acc = EvalAccumulator::new();
        acc.add_query(&["a", "x"], &truth(&["a"]));
        acc.add_query(&["b", "y"], &truth(&["b"]));
        assert!(acc.f1() > 0.5);
        assert_eq!(acc.accuracy(), 0.0);
        assert_eq!(acc.queries(), 2);
    }

    #[test]
    fn merge_accumulators() {
        let mut a = EvalAccumulator::new();
        a.add_query(&["a"], &truth(&["a"]));
        let mut b = EvalAccumulator::new();
        b.add_query(&["x"], &truth(&["y"]));
        a.merge(&b);
        assert_eq!(a.queries(), 2);
        assert!((a.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_metrics_defined() {
        let acc = EvalAccumulator::new();
        assert_eq!(acc.f1(), 0.0);
        assert_eq!(acc.accuracy(), 0.0);
    }
}
