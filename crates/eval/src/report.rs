//! Plain-text table rendering and JSON export for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple text table (header + rows), renderable in the style of the
//  paper's tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:<width$}  ", width = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV next to other experiment artifacts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float with three decimals (table cells).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha", "1"]).row(&["b", "10000"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["v,1", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,1\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
    }
}
