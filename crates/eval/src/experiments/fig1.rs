//! Figure 1: the n-sigma rule degrades as the service count grows.

use serde::Serialize;

use crate::experiments::{eval_locator, prepare, AppSpec, EvalScale};
use crate::nsigma::NSigmaRule;
use crate::report::Table;
use sleuth_baselines::common::OpProfile;

/// One point on the Figure 1 curves.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig1Row {
    /// Number of microservices in the application.
    pub services: usize,
    /// Best F1 over the n sweep.
    pub f1: f64,
    /// Best exact-match accuracy over the n sweep.
    pub acc: f64,
    /// The n achieving the best F1.
    pub optimal_n: f64,
}

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig1Result {
    /// One row per application scale.
    pub rows: Vec<Fig1Row>,
}

impl Fig1Result {
    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 1: n-sigma rule vs number of microservices",
            &["services", "best F1", "best ACC", "optimal n"],
        );
        for r in &self.rows {
            t.row(&[
                r.services.to_string(),
                format!("{:.3}", r.f1),
                format!("{:.3}", r.acc),
                format!("{:.1}", r.optimal_n),
            ]);
        }
        t
    }
}

/// Run the experiment: sweep `n` per application scale and keep the
/// best-F1 operating point.
pub fn fig1_nsigma(scale: &EvalScale) -> Fig1Result {
    let mut rows = Vec::new();
    for &services in &scale.fig1_service_counts {
        let spec = AppSpec::Synthetic(services * 4);
        let prepared = prepare(spec, scale, 1000 + services as u64);
        let profile = OpProfile::fit(&prepared.train);
        let mut best = Fig1Row {
            services,
            f1: 0.0,
            acc: 0.0,
            optimal_n: 0.0,
        };
        for step in 0..=10 {
            let n = 1.0 + 0.5 * step as f64;
            let rule = NSigmaRule::with_profile(profile.clone(), n);
            let acc = eval_locator(&rule, &prepared.queries);
            if acc.f1() > best.f1 {
                best.f1 = acc.f1();
                best.acc = acc.accuracy();
                best.optimal_n = n;
            }
        }
        rows.push(best);
    }
    Fig1Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_degrades_with_scale() {
        let result = fig1_nsigma(&EvalScale::smoke());
        assert_eq!(result.rows.len(), 2);
        // The headline claim: the rule is worse on the larger system.
        let small = &result.rows[0];
        let large = &result.rows[1];
        assert!(
            large.f1 <= small.f1 + 0.05,
            "F1 did not degrade: {} -> {}",
            small.f1,
            large.f1
        );
        assert!(small.f1 > 0.0, "rule should work at tiny scale");
        let table = result.table();
        assert_eq!(table.len(), 2);
    }
}
