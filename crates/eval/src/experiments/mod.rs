//! Experiment drivers, one per paper table/figure.

pub mod ablations;
pub mod fig1;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table3;

pub use ablations::{ablation_clustering, ablation_decoder, ablation_distance};
pub use fig1::fig1_nsigma;
pub use fig3::fig3_duration_cdf;
pub use fig5::fig5_scaling;
pub use fig6::fig6_updates;
pub use fig7::fig7_transfer;
pub use fig8::fig8_semantics;
pub use table1::table1_specs;
pub use table3::table3_accuracy;

use std::collections::BTreeSet;

use sleuth_baselines::common::RootCauseLocator;
use sleuth_core::pipeline::SleuthPipeline;
use sleuth_synth::config::App;
use sleuth_synth::presets;
use sleuth_synth::workload::{AnomalyQuery, CorpusBuilder};
use sleuth_trace::Trace;

use crate::metrics::EvalAccumulator;

/// Which benchmark application an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSpec {
    /// The SockShop preset.
    SockShop,
    /// The SocialNetwork preset.
    SocialNetwork,
    /// A Synthetic-N application.
    Synthetic(usize),
}

impl AppSpec {
    /// Instantiate the application.
    pub fn build(self, seed: u64) -> App {
        match self {
            AppSpec::SockShop => presets::sockshop(),
            AppSpec::SocialNetwork => presets::socialnetwork(),
            AppSpec::Synthetic(n) => presets::synthetic(n, seed),
        }
    }

    /// Display name.
    pub fn name(self) -> String {
        match self {
            AppSpec::SockShop => "SockShop".into(),
            AppSpec::SocialNetwork => "SocialNet".into(),
            AppSpec::Synthetic(n) => format!("Syn-{n}"),
        }
    }
}

/// Workload sizes for the experiment suite.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalScale {
    /// Healthy traces per training corpus.
    pub train_traces: usize,
    /// Anomaly queries per evaluation.
    pub queries: usize,
    /// Traffic driven per query episode.
    pub traffic_per_query: usize,
    /// GNN training epochs.
    pub gnn_epochs: usize,
    /// Per-node model epochs for Sage.
    pub sage_epochs: usize,
    /// VAE epochs for TraceAnomaly / DeepTraLog.
    pub vae_epochs: usize,
    /// Applications in the Table 3 comparison.
    pub table3_apps: Vec<AppSpec>,
    /// Synthetic sizes for the Fig. 5 scaling sweep.
    pub fig5_scales: Vec<usize>,
    /// Service counts for the Fig. 1 sweep.
    pub fig1_service_counts: Vec<usize>,
    /// Stream periods for Fig. 6.
    pub fig6_periods: usize,
    /// Application size for Fig. 6.
    pub fig6_app_rpcs: usize,
    /// Target application size for Fig. 7 (besides SockShop).
    pub fig7_target_rpcs: usize,
    /// Source application size for the single-source pre-trained model.
    pub fig7_source_rpcs: usize,
    /// Number of diverse applications in the multi-source corpus (the
    /// paper's "50 production microservices").
    pub fig7_pretrain_apps: usize,
    /// Fine-tuning sample counts for Fig. 7/8.
    pub finetune_sizes: Vec<usize>,
}

impl EvalScale {
    /// Tiny sizes for unit tests.
    pub fn smoke() -> Self {
        EvalScale {
            train_traces: 60,
            queries: 4,
            traffic_per_query: 8,
            gnn_epochs: 8,
            sage_epochs: 8,
            vae_epochs: 8,
            table3_apps: vec![AppSpec::Synthetic(16)],
            fig5_scales: vec![16, 32],
            fig1_service_counts: vec![4, 16],
            fig6_periods: 4,
            fig6_app_rpcs: 16,
            fig7_target_rpcs: 16,
            fig7_source_rpcs: 32,
            fig7_pretrain_apps: 2,
            finetune_sizes: vec![0, 30],
        }
    }

    /// Default (CI) sizes: minutes, not hours.
    pub fn ci() -> Self {
        EvalScale {
            train_traces: 250,
            queries: 25,
            traffic_per_query: 15,
            gnn_epochs: 25,
            sage_epochs: 25,
            vae_epochs: 30,
            table3_apps: vec![
                AppSpec::SockShop,
                AppSpec::SocialNetwork,
                AppSpec::Synthetic(64),
                AppSpec::Synthetic(256),
            ],
            fig5_scales: vec![16, 64, 256],
            fig1_service_counts: vec![4, 16, 64, 128],
            fig6_periods: 9,
            fig6_app_rpcs: 64,
            fig7_target_rpcs: 128,
            fig7_source_rpcs: 256,
            fig7_pretrain_apps: 6,
            finetune_sizes: vec![0, 50, 250],
        }
    }

    /// Paper-scale sizes (hours of CPU).
    pub fn full() -> Self {
        EvalScale {
            train_traces: 1_000,
            queries: 100,
            traffic_per_query: 40,
            gnn_epochs: 40,
            sage_epochs: 40,
            vae_epochs: 60,
            table3_apps: vec![
                AppSpec::SockShop,
                AppSpec::SocialNetwork,
                AppSpec::Synthetic(64),
                AppSpec::Synthetic(256),
                AppSpec::Synthetic(1024),
            ],
            fig5_scales: vec![16, 64, 256, 1024],
            fig1_service_counts: vec![4, 16, 64, 256],
            fig6_periods: 12,
            fig6_app_rpcs: 256,
            fig7_target_rpcs: 256,
            fig7_source_rpcs: 256,
            fig7_pretrain_apps: 12,
            finetune_sizes: vec![0, 100, 1_000],
        }
    }

    /// `full()` when `SLEUTH_FULL=1` is set, else `ci()`.
    pub fn from_env() -> Self {
        if std::env::var("SLEUTH_FULL").map(|v| v == "1").unwrap_or(false) {
            EvalScale::full()
        } else {
            EvalScale::ci()
        }
    }
}

/// A benchmark application with its training corpus and labelled
/// anomaly queries.
#[derive(Debug, Clone)]
pub struct PreparedApp {
    /// Display name.
    pub name: String,
    /// The application.
    pub app: App,
    /// Healthy training traces.
    pub train: Vec<Trace>,
    /// Labelled anomaly queries.
    pub queries: Vec<AnomalyQuery>,
}

/// Build the corpus and queries for one application.
///
/// The training corpus is *mixed* traffic — mostly healthy windows with
/// occasional background fault episodes — matching the paper's
/// unsupervised setting (§6.2 trains on 24 h of production-like
/// operation, which contains unlabelled anomalies; that exposure is
/// what teaches the GNN's knees the anomalous duration range).
pub fn prepare(spec: AppSpec, scale: &EvalScale, seed: u64) -> PreparedApp {
    let app = spec.build(seed);
    let instances: usize = app.services.iter().map(|s| s.pods.len()).sum();
    // ~2 faulted instances per background episode regardless of scale.
    let train_chaos = sleuth_synth::chaos::ChaosEngine {
        per_instance_probability: (2.0 / instances as f64).min(0.02),
        ..sleuth_synth::chaos::ChaosEngine::default()
    };
    let builder = CorpusBuilder::new(&app).seed(seed);
    let train = builder
        .clone()
        .chaos(train_chaos)
        .mixed_traces(scale.train_traces, 10)
        .plain_traces();
    let queries = builder.anomaly_queries(scale.queries, scale.traffic_per_query);
    PreparedApp {
        name: spec.name(),
        app,
        train,
        queries,
    }
}

/// Evaluate a per-trace locator across queries: every anomalous trace
/// is one RCA query, scored against its own ground truth.
pub fn eval_locator(locator: &dyn RootCauseLocator, queries: &[AnomalyQuery]) -> EvalAccumulator {
    let mut acc = EvalAccumulator::new();
    for q in queries {
        for st in &q.traces {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            let pred = locator.localize(&st.trace);
            acc.add_query(&pred, &truth);
        }
    }
    acc
}

/// Evaluate the Sleuth pipeline **with clustering**: each query's traces
/// are clustered together, representatives analysed, and every trace is
/// scored against the (possibly inherited) prediction.
pub fn eval_pipeline_clustered(
    pipeline: &SleuthPipeline,
    queries: &[AnomalyQuery],
) -> EvalAccumulator {
    let mut acc = EvalAccumulator::new();
    for q in queries {
        let traces: Vec<&Trace> = q.traces.iter().map(|t| &t.trace).collect();
        let results = pipeline.analyze(&traces, Default::default());
        for (st, r) in q.traces.iter().zip(&results) {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            acc.add_query(&r.services, &truth);
        }
    }
    acc
}

/// Count the RCA invocations clustering saves: `(representatives,
/// total_traces)` across queries.
pub fn clustering_savings(pipeline: &SleuthPipeline, queries: &[AnomalyQuery]) -> (usize, usize) {
    let mut reps = 0;
    let mut total = 0;
    for q in queries {
        let traces: Vec<&Trace> = q.traces.iter().map(|t| &t.trace).collect();
        let results = pipeline.analyze(&traces, Default::default());
        reps += results.iter().filter(|r| r.representative).count();
        total += results.len();
    }
    (reps, total)
}
