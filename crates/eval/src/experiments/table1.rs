//! Table 1: benchmark application specifications.

use serde::Serialize;

use crate::experiments::AppSpec;
use crate::report::Table;

/// One benchmark's measured specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Service count.
    pub services: usize,
    /// RPC invocation sites across flows.
    pub rpcs: usize,
    /// Spans of the largest flow.
    pub max_spans: usize,
    /// Span-tree depth of the deepest flow.
    pub max_depth: usize,
    /// Largest RPC fan-out.
    pub max_out_degree: usize,
}

/// Result of the Table 1 measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table1Result {
    /// One row per benchmark.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 1: specifications of microservice benchmarks",
            &["benchmark", "services", "RPCs", "max spans", "max depth", "max out degree"],
        );
        for r in &self.rows {
            t.row(&[
                r.name.clone(),
                r.services.to_string(),
                r.rpcs.to_string(),
                r.max_spans.to_string(),
                r.max_depth.to_string(),
                r.max_out_degree.to_string(),
            ]);
        }
        t
    }
}

/// Measure every benchmark the paper lists.
pub fn table1_specs() -> Table1Result {
    let specs = [
        AppSpec::SockShop,
        AppSpec::SocialNetwork,
        AppSpec::Synthetic(16),
        AppSpec::Synthetic(64),
        AppSpec::Synthetic(256),
        AppSpec::Synthetic(1024),
    ];
    let rows = specs
        .iter()
        .map(|&spec| {
            let app = spec.build(7);
            Table1Row {
                name: spec.name(),
                services: app.num_services(),
                rpcs: app.num_rpcs(),
                max_spans: app.max_spans(),
                max_depth: app.max_depth(),
                max_out_degree: app.max_out_degree(),
            }
        })
        .collect();
    Table1Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_scale() {
        let r = table1_specs();
        assert_eq!(r.rows.len(), 6);
        let by_name = |n: &str| r.rows.iter().find(|row| row.name == n).unwrap();
        assert_eq!(by_name("SockShop").services, 11);
        assert_eq!(by_name("SocialNet").services, 26);
        assert_eq!(by_name("Syn-1024").rpcs, 1024);
        assert_eq!(by_name("Syn-1024").services, 256);
        // Depth 9 for the two real benchmarks, as in the paper.
        assert_eq!(by_name("SockShop").max_depth, 9);
        assert_eq!(by_name("SocialNet").max_depth, 9);
        // Scale grows monotonically across the synthetic family.
        let spans: Vec<usize> = ["Syn-16", "Syn-64", "Syn-256", "Syn-1024"]
            .iter()
            .map(|n| by_name(n).max_spans)
            .collect();
        assert!(spans.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.table().len(), 6);
    }
}
