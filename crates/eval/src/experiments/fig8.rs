//! Figure 8: sensitivity to semantic information in span names.
//!
//! Service/operation names are randomised in a test replica; pre-trained
//! models that overfit one vocabulary lose accuracy on misleading names,
//! while a model pre-trained on diverse applications is robust, and
//! fine-tuning recovers both.

use std::collections::HashMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use sleuth_baselines::common::RootCauseLocator;
use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::{EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth_synth::workload::{AnomalyQuery, CorpusBuilder};
use sleuth_trace::{Span, Trace};

use crate::experiments::{prepare, AppSpec, EvalScale, PreparedApp};
use crate::metrics::EvalAccumulator;
use crate::report::Table;

/// One measurement cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig8Row {
    /// Pre-training source: `single` or `multi`.
    pub model: String,
    /// Test-set naming: `original` or `randomized`.
    pub names: String,
    /// Whether the model was fine-tuned on target samples first.
    pub finetuned: bool,
    /// Exact-match accuracy.
    pub acc: f64,
}

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig8Result {
    /// All cells.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Look up one cell's accuracy.
    pub fn acc(&self, model: &str, names: &str, finetuned: bool) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.model == model && r.names == names && r.finetuned == finetuned)
            .map(|r| r.acc)
    }

    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 8: accuracy vs span semantics",
            &["model", "names", "finetuned", "ACC"],
        );
        for r in &self.rows {
            t.row(&[
                r.model.clone(),
                r.names.clone(),
                r.finetuned.to_string(),
                format!("{:.3}", r.acc),
            ]);
        }
        t
    }
}

/// Consistent random renaming of services and operations, disjoint from
/// any natural vocabulary.
#[derive(Debug, Default)]
struct Renamer {
    services: HashMap<String, String>,
    ops: HashMap<String, String>,
}

impl Renamer {
    fn gibberish(rng: &mut ChaCha8Rng) -> String {
        let letters: String = (0..10)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        format!("zz{letters}")
    }

    fn service(&mut self, name: &str, rng: &mut ChaCha8Rng) -> String {
        self.services
            .entry(name.to_string())
            .or_insert_with(|| Self::gibberish(rng))
            .clone()
    }

    fn op(&mut self, name: &str, rng: &mut ChaCha8Rng) -> String {
        self.ops
            .entry(name.to_string())
            .or_insert_with(|| Self::gibberish(rng))
            .clone()
    }

    fn rename_trace(&mut self, trace: &Trace, rng: &mut ChaCha8Rng) -> Trace {
        let spans: Vec<Span> = trace
            .spans()
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.service = self.service(&s.service, rng).as_str().into();
                s.name = self.op(&s.name, rng).as_str().into();
                s
            })
            .collect();
        Trace::assemble(spans).expect("renaming preserves structure")
    }

    fn rename_queries(&mut self, queries: &[AnomalyQuery], rng: &mut ChaCha8Rng) -> Vec<AnomalyQuery> {
        queries
            .iter()
            .map(|q| {
                let traces = q
                    .traces
                    .iter()
                    .map(|st| {
                        let mut st = st.clone();
                        st.trace = self.rename_trace(&st.trace, rng);
                        st.ground_truth.services = st
                            .ground_truth
                            .services
                            .iter()
                            .map(|s| self.service(s, rng))
                            .collect();
                        st
                    })
                    .collect();
                AnomalyQuery {
                    plan: q.plan.clone(),
                    traces,
                }
            })
            .collect()
    }
}

fn eval(model: &SleuthModel, featurizer: &Featurizer, train: &[Trace], queries: &[AnomalyQuery]) -> f64 {
    let pipeline = SleuthPipeline::from_parts(
        model.clone(),
        featurizer.clone(),
        train,
        &PipelineConfig::default(),
    );
    let mut acc = EvalAccumulator::new();
    for q in queries {
        for st in &q.traces {
            let truth = st.ground_truth.services.iter().cloned().collect();
            let pred = pipeline.localize(&st.trace);
            acc.add_query(&pred, &truth);
        }
    }
    acc.accuracy()
}

/// Run the semantics-sensitivity experiment.
pub fn fig8_semantics(scale: &EvalScale) -> Fig8Result {
    let mut featurizer = Featurizer::new(ModelConfig::default().sem_dim);
    let train_cfg = TrainConfig {
        epochs: scale.gnn_epochs,
        batch_traces: 32,
        lr: 1e-2,
        seed: 0,
    };

    // Pre-trained models, as in Fig. 7.
    let single_src = AppSpec::Synthetic(scale.fig7_source_rpcs).build(810);
    let single_corpus = CorpusBuilder::new(&single_src)
        .seed(811)
        .normal_traces(scale.train_traces)
        .plain_traces();
    let mut single = SleuthModel::new(&ModelConfig::default(), 11);
    let enc: Vec<EncodedTrace> = single_corpus.iter().map(|t| featurizer.encode(t)).collect();
    single.train(&enc, &train_cfg);

    let mut multi_corpus = Vec::new();
    for k in 0..scale.fig7_pretrain_apps {
        let n = [16, 24, 32, 48, 64, 96][k % 6];
        let app = AppSpec::Synthetic(n).build(920 + k as u64);
        let per_app = (scale.train_traces / scale.fig7_pretrain_apps).max(20);
        multi_corpus.extend(
            CorpusBuilder::new(&app)
                .seed(921 + k as u64)
                .normal_traces(per_app)
                .plain_traces(),
        );
    }
    let mut multi = SleuthModel::new(&ModelConfig::default(), 12);
    let enc: Vec<EncodedTrace> = multi_corpus.iter().map(|t| featurizer.encode(t)).collect();
    multi.train(&enc, &train_cfg);

    // Target with two naming variants.
    let target = prepare(AppSpec::SockShop, scale, 960);
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let mut renamer = Renamer::default();
    let renamed_train: Vec<Trace> = target
        .train
        .iter()
        .map(|t| renamer.rename_trace(t, &mut rng))
        .collect();
    let renamed_queries = renamer.rename_queries(&target.queries, &mut rng);

    let variants: [(&str, &PreparedApp, &[Trace], &[AnomalyQuery]); 2] = [
        ("original", &target, &target.train, &target.queries),
        ("randomized", &target, &renamed_train, &renamed_queries),
    ];

    let finetune_samples = scale.finetune_sizes.last().copied().unwrap_or(0).max(20);
    let mut rows = Vec::new();
    for (model_name, base) in [("single", &single), ("multi", &multi)] {
        for (names, _t, train, queries) in &variants {
            // Zero-shot.
            rows.push(Fig8Row {
                model: model_name.into(),
                names: (*names).into(),
                finetuned: false,
                acc: eval(base, &featurizer, train, queries),
            });
            // Fine-tuned on the correspondingly named target samples.
            let mut ft = (*base).clone();
            let subset: Vec<EncodedTrace> = train[..finetune_samples.min(train.len())]
                .iter()
                .map(|t| featurizer.encode(t))
                .collect();
            ft.train(
                &subset,
                &TrainConfig {
                    epochs: (scale.gnn_epochs / 3).max(3),
                    batch_traces: 32,
                    lr: 5e-3,
                    seed: 5,
                },
            );
            rows.push(Fig8Row {
                model: model_name.into(),
                names: (*names).into(),
                finetuned: true,
                acc: eval(&ft, &featurizer, train, queries),
            });
        }
    }
    Fig8Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_eight_cells() {
        let r = fig8_semantics(&EvalScale::smoke());
        assert_eq!(r.rows.len(), 8);
        for model in ["single", "multi"] {
            for names in ["original", "randomized"] {
                for ft in [false, true] {
                    assert!(r.acc(model, names, ft).is_some(), "{model}/{names}/{ft}");
                }
            }
        }
        assert!(!r.table().is_empty());
    }
}
