//! Figure 6: live detection accuracy while services are updated.
//!
//! Four updates roll out over a streaming window (A: slow a third-level
//! service 10×; B: remove it; C: add a second-level service; D: add
//! three 3-service chains). Each period both models are evaluated on
//! fresh traffic *before* retraining on it — so the period right after
//! an update shows each model's robustness to staleness. Sage's
//! per-node models are keyed to the topology and collapse on structural
//! updates; Sleuth's topology-independent GNN degrades gently.

use serde::Serialize;

use sleuth_baselines::Sage;
use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::{EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth_synth::updates;
use sleuth_synth::workload::CorpusBuilder;

use crate::experiments::{eval_locator, AppSpec, EvalScale};
use crate::report::Table;

/// One streaming period.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig6Row {
    /// Period index.
    pub period: usize,
    /// Update rolled out at the start of this period, if any.
    pub update: Option<char>,
    /// Sleuth accuracy on this period's traffic (pre-retrain).
    pub sleuth_acc: f64,
    /// Sage accuracy on this period's traffic (pre-retrain).
    pub sage_acc: f64,
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig6Result {
    /// One row per period.
    pub rows: Vec<Fig6Row>,
}

impl Fig6Result {
    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 6: accuracy under service updates",
            &["period", "update", "Sleuth ACC", "Sage ACC"],
        );
        for r in &self.rows {
            t.row(&[
                r.period.to_string(),
                r.update.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
                format!("{:.3}", r.sleuth_acc),
                format!("{:.3}", r.sage_acc),
            ]);
        }
        t
    }

    /// Accuracy rows for the period in which update `u` landed.
    pub fn at_update(&self, u: char) -> Option<&Fig6Row> {
        self.rows.iter().find(|r| r.update == Some(u))
    }
}

/// Run the streaming-update experiment.
pub fn fig6_updates(scale: &EvalScale) -> Fig6Result {
    let mut app = AppSpec::Synthetic(scale.fig6_app_rpcs).build(600);
    let periods = scale.fig6_periods.max(4);
    // Updates spread over the window, never in period 0.
    let mut schedule: Vec<(usize, char)> = ['A', 'B', 'C', 'D']
        .iter()
        .enumerate()
        .map(|(k, &u)| ((((k + 1) * periods) / 5).max(1), u))
        .collect();
    schedule.dedup_by_key(|(p, _)| *p);

    // Initial training on period-0 traffic.
    let model_cfg = ModelConfig::default();
    let mut featurizer = Featurizer::new(model_cfg.sem_dim);
    let init_corpus = CorpusBuilder::new(&app)
        .seed(601)
        .normal_traces(scale.train_traces)
        .plain_traces();
    let mut model = SleuthModel::new(&model_cfg, 9);
    let full_train = TrainConfig {
        epochs: scale.gnn_epochs,
        batch_traces: 32,
        lr: 1e-2,
        seed: 0,
    };
    let encoded: Vec<EncodedTrace> = init_corpus.iter().map(|t| featurizer.encode(t)).collect();
    model.train(&encoded, &full_train);
    let mut sage = Sage::fit(&init_corpus, scale.sage_epochs, 1);
    let mut slowed_service: Option<String> = None;

    let mut rows = Vec::new();
    for period in 0..periods {
        let update = schedule
            .iter()
            .find(|(p, _)| *p == period)
            .map(|&(_, u)| u);
        if let Some(u) = update {
            match u {
                'A' => {
                    let r = updates::update_a_slow_service(&mut app, 10.0);
                    slowed_service = r.services.first().cloned();
                }
                'B' => {
                    if let Some(svc) = slowed_service.take() {
                        updates::update_b_remove_service(&mut app, &svc);
                    }
                }
                'C' => {
                    updates::update_c_add_service(&mut app);
                }
                _ => {
                    updates::update_d_add_chains(&mut app);
                }
            }
        }

        // Fresh traffic on the (possibly updated) topology.
        let builder = CorpusBuilder::new(&app).seed(700 + period as u64);
        let corpus = builder
            .normal_traces((scale.train_traces / 2).max(40))
            .plain_traces();
        let queries = builder.anomaly_queries(
            (scale.queries / 2).max(3),
            scale.traffic_per_query,
        );

        // Evaluate the *stale* models first.
        let sleuth = SleuthPipeline::from_parts(
            model.clone(),
            featurizer.clone(),
            &corpus,
            &PipelineConfig::default(),
        );
        let sleuth_acc = eval_locator(&sleuth, &queries).accuracy();
        let sage_acc = eval_locator(&sage, &queries).accuracy();
        rows.push(Fig6Row {
            period,
            update,
            sleuth_acc,
            sage_acc,
        });

        // Stream-retrain on this period's data: Sleuth fine-tunes, Sage
        // refits from scratch (its per-node models cannot be reused
        // after topology changes).
        let encoded: Vec<EncodedTrace> = corpus.iter().map(|t| featurizer.encode(t)).collect();
        model.train(
            &encoded,
            &TrainConfig {
                epochs: (scale.gnn_epochs / 4).max(3),
                batch_traces: 32,
                lr: 5e-3,
                seed: period as u64,
            },
        );
        sage = Sage::fit(&corpus, scale.sage_epochs, 1);
    }
    Fig6Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_full_timeline_with_updates() {
        let r = fig6_updates(&EvalScale::smoke());
        assert_eq!(r.rows.len(), 4);
        let n_updates = r.rows.iter().filter(|row| row.update.is_some()).count();
        assert!(n_updates >= 2, "expected updates in the window");
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.sleuth_acc));
            assert!((0.0..=1.0).contains(&row.sage_acc));
        }
        assert!(!r.table().is_empty());
    }
}
