//! Table 3: F1 and accuracy of every RCA algorithm on every benchmark.

use std::cell::RefCell;
use std::collections::BTreeSet;

use serde::Serialize;

use sleuth_baselines::{DeepTraLog, MaxDuration, RealtimeRca, Sage, Threshold, TraceAnomaly};
use sleuth_cluster::DistanceMatrix;
use sleuth_core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_trace::Trace;

use crate::experiments::{eval_locator, eval_pipeline_clustered, prepare, EvalScale};
use crate::metrics::EvalAccumulator;
use crate::report::Table;

/// F1/ACC pair for one algorithm on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Table3Cell {
    /// F1 score.
    pub f1: f64,
    /// Exact-match accuracy.
    pub acc: f64,
}

/// One algorithm's results across benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3Row {
    /// Algorithm name (paper's row labels).
    pub algorithm: String,
    /// One cell per benchmark, ordered as in
    /// [`Table3Result::apps`].
    pub cells: Vec<Table3Cell>,
}

/// Result of the Table 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3Result {
    /// Benchmark names (column groups).
    pub apps: Vec<String>,
    /// One row per algorithm.
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// Cell for `(algorithm, app)`.
    pub fn cell(&self, algorithm: &str, app: &str) -> Option<Table3Cell> {
        let col = self.apps.iter().position(|a| a == app)?;
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm)
            .and_then(|r| r.cells.get(col).copied())
    }

    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut header: Vec<String> = vec!["algorithm".into()];
        for app in &self.apps {
            header.push(format!("{app} F1"));
            header.push(format!("{app} ACC"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new("Table 3: RCA accuracy", &header_refs);
        for r in &self.rows {
            let mut cells = vec![r.algorithm.clone()];
            for c in &r.cells {
                cells.push(format!("{:.2}", c.f1));
                cells.push(format!("{:.2}", c.acc));
            }
            t.row(&cells);
        }
        t
    }
}

fn cell(acc: &EvalAccumulator) -> Table3Cell {
    Table3Cell {
        f1: acc.f1(),
        acc: acc.accuracy(),
    }
}

/// Run the full Table 3 comparison.
pub fn table3_accuracy(scale: &EvalScale) -> Table3Result {
    let algorithms = [
        "Max",
        "Threshold",
        "TraceAnomaly",
        "Realtime RCA",
        "Sage",
        "Sleuth-GCN",
        "Sleuth-GIN w/ DeepTraLog",
        "Sleuth-GIN w/ clustering",
        "Sleuth-GIN w/o clustering",
    ];
    let mut rows: Vec<Table3Row> = algorithms
        .iter()
        .map(|a| Table3Row {
            algorithm: a.to_string(),
            cells: Vec::new(),
        })
        .collect();

    let mut apps = Vec::new();
    for (i, &spec) in scale.table3_apps.iter().enumerate() {
        let prepared = prepare(spec, scale, 40 + i as u64);
        apps.push(prepared.name.clone());
        let train = &prepared.train;
        let queries = &prepared.queries;

        // Rule/statistics baselines.
        let max = MaxDuration::new();
        let threshold = Threshold::fit(train);
        let trace_anomaly = TraceAnomaly::fit(train, scale.vae_epochs, 1);
        let realtime = RealtimeRca::fit(train);
        let sage = Sage::fit(train, scale.sage_epochs, 1);

        // Sleuth variants.
        let train_cfg = TrainConfig {
            epochs: scale.gnn_epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        };
        let gin_cfg = PipelineConfig {
            train: train_cfg,
            ..PipelineConfig::default()
        };
        let gcn_cfg = PipelineConfig {
            train: train_cfg,
            ..PipelineConfig::gcn()
        };
        let gin = SleuthPipeline::fit(train, &gin_cfg);
        let gcn = SleuthPipeline::fit(train, &gcn_cfg);
        let deeptralog = RefCell::new(DeepTraLog::fit(train, scale.vae_epochs, 1));

        let results = [
            eval_locator(&max, queries),
            eval_locator(&threshold, queries),
            eval_locator(&trace_anomaly, queries),
            eval_locator(&realtime, queries),
            eval_locator(&sage, queries),
            eval_locator(&gcn, queries),
            eval_deeptralog_clustered(&gin, &deeptralog, queries),
            eval_pipeline_clustered(&gin, queries),
            eval_locator(&gin, queries),
        ];
        for (row, acc) in rows.iter_mut().zip(&results) {
            row.cells.push(cell(acc));
        }
    }
    Table3Result { apps, rows }
}

/// Sleuth with DeepTraLog's SVDD embedding distance as the clustering
/// metric (§6.2).
fn eval_deeptralog_clustered(
    pipeline: &SleuthPipeline,
    deeptralog: &RefCell<DeepTraLog>,
    queries: &[sleuth_synth::workload::AnomalyQuery],
) -> EvalAccumulator {
    let mut acc = EvalAccumulator::new();
    for q in queries {
        let traces: Vec<&Trace> = q.traces.iter().map(|t| &t.trace).collect();
        let embeddings: Vec<Vec<f32>> = traces
            .iter()
            .map(|t| deeptralog.borrow_mut().embed(t))
            .collect();
        let dm = DistanceMatrix::builder().build_from_fn(traces.len(), |i, j| {
            embeddings[i]
                .iter()
                .zip(&embeddings[j])
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum::<f64>()
                .sqrt()
        });
        let results = pipeline.analyze(&traces, AnalyzeOptions::with_distance(&dm));
        for (st, r) in q.traces.iter().zip(&results) {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            acc.add_query(&r.services, &truth);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_rows() {
        let r = table3_accuracy(&EvalScale::smoke());
        assert_eq!(r.apps.len(), 1);
        assert_eq!(r.rows.len(), 9);
        for row in &r.rows {
            assert_eq!(row.cells.len(), 1);
            let c = &row.cells[0];
            assert!((0.0..=1.0).contains(&c.f1));
            assert!((0.0..=1.0).contains(&c.acc));
        }
        // The paper's headline: Sleuth-GIN w/o clustering beats the
        // rule-based baselines.
        let gin = r.cell("Sleuth-GIN w/o clustering", &r.apps[0]).unwrap();
        let threshold = r.cell("Threshold", &r.apps[0]).unwrap();
        assert!(
            gin.f1 >= threshold.f1,
            "GIN ({}) should not lose to Threshold ({})",
            gin.f1,
            threshold.f1
        );
        assert_eq!(r.table().len(), 9);
    }
}
