//! Figure 7: transfer learning — pre-trained Sleuth models fine-tuned
//! onto unseen applications, vs Sage retrained from scratch.

use std::time::Instant;

use serde::Serialize;

use sleuth_baselines::Sage;
use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::{EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth_synth::workload::CorpusBuilder;
use sleuth_trace::Trace;

use crate::experiments::{eval_locator, prepare, AppSpec, EvalScale, PreparedApp};
use crate::report::Table;

/// One operating point in the transfer sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7Row {
    /// Target application.
    pub target: String,
    /// Model provenance: `pretrain-single`, `pretrain-multi`,
    /// `scratch`, or `sage-scratch`.
    pub source: String,
    /// Fine-tuning / retraining samples used.
    pub finetune_samples: usize,
    /// Exact-match accuracy on the target's anomaly queries.
    pub acc: f64,
    /// Fine-tuning / retraining wall time (s).
    pub train_s: f64,
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7Result {
    /// All measured operating points.
    pub rows: Vec<Fig7Row>,
}

impl Fig7Result {
    /// Rows for one target/source pair, ordered by sample count.
    pub fn series(&self, target: &str, source: &str) -> Vec<&Fig7Row> {
        let mut v: Vec<&Fig7Row> = self
            .rows
            .iter()
            .filter(|r| r.target == target && r.source == source)
            .collect();
        v.sort_by_key(|r| r.finetune_samples);
        v
    }

    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 7: transfer learning",
            &["target", "source", "samples", "ACC", "train s"],
        );
        for r in &self.rows {
            t.row(&[
                r.target.clone(),
                r.source.clone(),
                r.finetune_samples.to_string(),
                format!("{:.3}", r.acc),
                format!("{:.3}", r.train_s),
            ]);
        }
        t
    }
}

/// Train a Sleuth model on a corpus (shared featurizer), returning it.
fn train_model(
    featurizer: &mut Featurizer,
    corpus: &[Trace],
    epochs: usize,
    seed: u64,
) -> SleuthModel {
    let encoded: Vec<EncodedTrace> = corpus.iter().map(|t| featurizer.encode(t)).collect();
    let mut model = SleuthModel::new(&ModelConfig::default(), seed);
    model.train(
        &encoded,
        &TrainConfig {
            epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed,
        },
    );
    model
}

fn eval_model_on(
    model: &SleuthModel,
    featurizer: &Featurizer,
    target: &PreparedApp,
) -> f64 {
    let pipeline = SleuthPipeline::from_parts(
        model.clone(),
        featurizer.clone(),
        &target.train,
        &PipelineConfig::default(),
    );
    eval_locator(&pipeline, &target.queries).accuracy()
}

/// Run the transfer-learning sweep.
pub fn fig7_transfer(scale: &EvalScale) -> Fig7Result {
    let mut featurizer = Featurizer::new(ModelConfig::default().sem_dim);

    // Pre-training corpora.
    let single_src = AppSpec::Synthetic(scale.fig7_source_rpcs).build(800);
    let single_corpus = CorpusBuilder::new(&single_src)
        .seed(801)
        .normal_traces(scale.train_traces)
        .plain_traces();
    let single_model = train_model(&mut featurizer, &single_corpus, scale.gnn_epochs, 1);

    // The "50 production applications" corpus: diverse sizes and seeds.
    let mut multi_corpus = Vec::new();
    for k in 0..scale.fig7_pretrain_apps {
        let n = [16, 24, 32, 48, 64, 96][k % 6];
        let app = AppSpec::Synthetic(n).build(900 + k as u64);
        let per_app = (scale.train_traces / scale.fig7_pretrain_apps).max(20);
        multi_corpus.extend(
            CorpusBuilder::new(&app)
                .seed(901 + k as u64)
                .normal_traces(per_app)
                .plain_traces(),
        );
    }
    let multi_model = train_model(&mut featurizer, &multi_corpus, scale.gnn_epochs, 2);

    // Targets.
    let targets = [
        AppSpec::SockShop,
        AppSpec::Synthetic(scale.fig7_target_rpcs),
    ];

    let mut rows = Vec::new();
    for (ti, &tspec) in targets.iter().enumerate() {
        let target = prepare(tspec, scale, 950 + ti as u64);

        // Pre-trained models fine-tuned with increasing sample counts.
        for (source_name, base) in [("pretrain-single", &single_model), ("pretrain-multi", &multi_model)] {
            for &samples in &scale.finetune_sizes {
                let mut model = base.clone();
                let start = Instant::now();
                if samples > 0 {
                    let subset: Vec<EncodedTrace> = target.train
                        [..samples.min(target.train.len())]
                        .iter()
                        .map(|t| featurizer.encode(t))
                        .collect();
                    model.train(
                        &subset,
                        &TrainConfig {
                            epochs: (scale.gnn_epochs / 3).max(3),
                            batch_traces: 32,
                            lr: 5e-3,
                            seed: 3,
                        },
                    );
                }
                let train_s = start.elapsed().as_secs_f64();
                rows.push(Fig7Row {
                    target: target.name.clone(),
                    source: source_name.to_string(),
                    finetune_samples: samples,
                    acc: eval_model_on(&model, &featurizer, &target),
                    train_s,
                });
            }
        }

        // Scratch reference (the paper's red line).
        let start = Instant::now();
        let scratch = train_model(&mut featurizer, &target.train, scale.gnn_epochs, 4);
        rows.push(Fig7Row {
            target: target.name.clone(),
            source: "scratch".into(),
            finetune_samples: target.train.len(),
            acc: eval_model_on(&scratch, &featurizer, &target),
            train_s: start.elapsed().as_secs_f64(),
        });

        // Sage must be retrained from scratch at every sample count.
        for &samples in &scale.finetune_sizes {
            let n = samples.max(10).min(target.train.len());
            let start = Instant::now();
            let sage = Sage::fit(&target.train[..n], scale.sage_epochs, 1);
            let train_s = start.elapsed().as_secs_f64();
            rows.push(Fig7Row {
                target: target.name.clone(),
                source: "sage-scratch".into(),
                finetune_samples: samples,
                acc: eval_locator(&sage, &target.queries).accuracy(),
                train_s,
            });
        }
    }
    Fig7Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_improves_with_finetuning() {
        let r = fig7_transfer(&EvalScale::smoke());
        assert!(!r.rows.is_empty());
        // Fine-tuning should not hurt relative to zero-shot for the
        // single-source model (allowing noise at smoke scale).
        for target in ["SockShop", "Syn-16"] {
            let series = r.series(target, "pretrain-single");
            assert_eq!(series.len(), 2);
            assert!(
                series[1].acc + 0.25 >= series[0].acc,
                "{target}: fine-tuning collapsed: {} -> {}",
                series[0].acc,
                series[1].acc
            );
        }
        assert!(!r.table().is_empty());
    }
}
