//! Figure 5: training and inference time scaling, Sleuth vs Sage.

use std::time::{Duration, Instant};

use serde::Serialize;

use sleuth_baselines::common::RootCauseLocator;
use sleuth_baselines::Sage;
use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_trace::Trace;

use crate::experiments::{prepare, AppSpec, EvalScale};
use crate::report::Table;

/// One scale point of the Figure 5 sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig5Row {
    /// RPCs in the synthetic application.
    pub rpcs: usize,
    /// Sleuth-GIN training wall time (s).
    pub gin_train_s: f64,
    /// Sleuth-GCN training wall time (s).
    pub gcn_train_s: f64,
    /// Sage training wall time (s).
    pub sage_train_s: f64,
    /// Sleuth-GIN inference time for the batch (s), no clustering.
    pub gin_infer_s: f64,
    /// Sleuth-GCN inference time (s), no clustering.
    pub gcn_infer_s: f64,
    /// Sage inference time (s).
    pub sage_infer_s: f64,
    /// Sleuth-GIN inference time (s) with clustering.
    pub gin_clustered_infer_s: f64,
    /// Traces in the inference batch.
    pub batch: usize,
    /// Sleuth model parameters (constant in scale).
    pub gin_params: usize,
    /// Sage parameters (grows with scale).
    pub sage_params: usize,
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig5Result {
    /// One row per application scale.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 5: training / inference time scaling",
            &[
                "RPCs",
                "GIN train s",
                "GCN train s",
                "Sage train s",
                "GIN infer s",
                "GCN infer s",
                "Sage infer s",
                "GIN+cluster s",
                "GIN params",
                "Sage params",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.rpcs.to_string(),
                format!("{:.3}", r.gin_train_s),
                format!("{:.3}", r.gcn_train_s),
                format!("{:.3}", r.sage_train_s),
                format!("{:.3}", r.gin_infer_s),
                format!("{:.3}", r.gcn_infer_s),
                format!("{:.3}", r.sage_infer_s),
                format!("{:.3}", r.gin_clustered_infer_s),
                r.gin_params.to_string(),
                r.sage_params.to_string(),
            ]);
        }
        t
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Run the scaling sweep.
pub fn fig5_scaling(scale: &EvalScale) -> Fig5Result {
    let mut rows = Vec::new();
    for (i, &rpcs) in scale.fig5_scales.iter().enumerate() {
        let prepared = prepare(AppSpec::Synthetic(rpcs), scale, 500 + i as u64);
        let train_cfg = TrainConfig {
            epochs: scale.gnn_epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        };
        let (gin, gin_train) = time(|| {
            SleuthPipeline::fit(
                &prepared.train,
                &PipelineConfig {
                    train: train_cfg,
                    ..PipelineConfig::default()
                },
            )
        });
        let (gcn, gcn_train) = time(|| {
            SleuthPipeline::fit(
                &prepared.train,
                &PipelineConfig {
                    train: train_cfg,
                    ..PipelineConfig::gcn()
                },
            )
        });
        let (sage, sage_train) = time(|| Sage::fit(&prepared.train, scale.sage_epochs, 1));

        // Inference batch: all anomalous traces across queries.
        let batch: Vec<&Trace> = prepared
            .queries
            .iter()
            .flat_map(|q| q.traces.iter().map(|t| &t.trace))
            .collect();
        let (_, gin_infer) = time(|| {
            for t in &batch {
                let _ = gin.localize(t);
            }
        });
        let (_, gcn_infer) = time(|| {
            for t in &batch {
                let _ = gcn.localize(t);
            }
        });
        let (_, sage_infer) = time(|| {
            for t in &batch {
                let _ = sage.localize(t);
            }
        });
        let (_, gin_clustered) = time(|| {
            let _ = gin.analyze(&batch, Default::default());
        });

        rows.push(Fig5Row {
            rpcs,
            gin_train_s: gin_train.as_secs_f64(),
            gcn_train_s: gcn_train.as_secs_f64(),
            sage_train_s: sage_train.as_secs_f64(),
            gin_infer_s: gin_infer.as_secs_f64(),
            gcn_infer_s: gcn_infer.as_secs_f64(),
            sage_infer_s: sage_infer.as_secs_f64(),
            gin_clustered_infer_s: gin_clustered.as_secs_f64(),
            batch: batch.len(),
            gin_params: gin.rca().model().num_parameters(),
            sage_params: sage.num_parameters(),
        });
    }
    Fig5Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sage_parameters_grow_and_sleuth_stay_fixed() {
        let r = fig5_scaling(&EvalScale::smoke());
        assert_eq!(r.rows.len(), 2);
        let (a, b) = (&r.rows[0], &r.rows[1]);
        assert_eq!(a.gin_params, b.gin_params, "Sleuth model must be fixed-size");
        assert!(
            b.sage_params > a.sage_params,
            "Sage must grow with the app: {} vs {}",
            a.sage_params,
            b.sage_params
        );
        assert!(a.batch > 0 && b.batch > 0);
        assert!(r.table().len() == 2);
    }
}
