//! Figure 3: cumulative distribution of span durations.
//!
//! The paper's CDF motivates the log/standardise duration transform:
//! \>90% of spans are within 10× of the minimum, while the top 1%
//! stretch five orders of magnitude.

use serde::Serialize;

use crate::experiments::{AppSpec, EvalScale};
use crate::report::Table;
use sleuth_synth::workload::CorpusBuilder;

/// One CDF point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CdfPoint {
    /// Cumulative probability (0–1).
    pub percentile: f64,
    /// Span duration normalised to the corpus minimum.
    pub ratio_to_min: f64,
}

/// Result of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig3Result {
    /// CDF samples.
    pub points: Vec<CdfPoint>,
    /// Total spans measured.
    pub spans: usize,
}

impl Fig3Result {
    /// Ratio at a given percentile (nearest point).
    pub fn ratio_at(&self, percentile: f64) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.percentile - percentile)
                    .abs()
                    .partial_cmp(&(b.percentile - percentile).abs())
                    .expect("finite")
            })
            .map(|p| p.ratio_to_min)
            .unwrap_or(f64::NAN)
    }

    /// Render in the paper's style.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3: span duration CDF (normalised to minimum)",
            &["percentile", "duration / min"],
        );
        for p in &self.points {
            t.row(&[format!("{:.4}", p.percentile), format!("{:.1}", p.ratio_to_min)]);
        }
        t
    }
}

/// Measure the duration CDF over a synthetic corpus.
pub fn fig3_duration_cdf(scale: &EvalScale) -> Fig3Result {
    let app = AppSpec::Synthetic(64).build(77);
    let corpus = CorpusBuilder::new(&app)
        .seed(77)
        .normal_traces(scale.train_traces.max(200));
    let mut durations: Vec<u64> = corpus
        .traces
        .iter()
        .flat_map(|t| t.trace.spans().iter().map(|s| s.duration_us().max(1)))
        .collect();
    durations.sort_unstable();
    let min = durations[0] as f64;
    let points = [
        0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0,
    ]
    .iter()
    .map(|&q| {
        let idx = ((q * durations.len() as f64).ceil() as usize)
            .clamp(1, durations.len())
            - 1;
        CdfPoint {
            percentile: q,
            ratio_to_min: durations[idx] as f64 / min,
        }
    })
    .collect();
    Fig3Result {
        points,
        spans: durations.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_heavy_tailed() {
        let r = fig3_duration_cdf(&EvalScale::smoke());
        assert!(r.spans > 500);
        // Monotone CDF.
        for w in r.points.windows(2) {
            assert!(w[1].ratio_to_min >= w[0].ratio_to_min);
        }
        // Heavy tail: p99 is at least an order of magnitude above the
        // median ratio, echoing the paper's skew claim.
        let p50 = r.ratio_at(0.50);
        let p99 = r.ratio_at(0.99);
        assert!(
            p99 / p50 > 10.0,
            "tail not heavy enough: p50 {p50}, p99 {p99}"
        );
        assert!(!r.table().is_empty());
    }
}
