//! Ablations over Sleuth's design choices.
//!
//! * [`ablation_distance`] — the Eq. 1 weighted-Jaccard distance vs the
//!   tree edit distance it replaces (§3.3.1's complexity argument),
//! * [`ablation_clustering`] — HDBSCAN vs DBSCAN vs no clustering:
//!   accuracy cost and inference savings (§3.3.2),
//! * [`ablation_decoder`] — the GNN decoder vs a linear SEM (§3.4's
//!   non-linearity argument) and the GCN aggregation ablation.

use std::collections::BTreeSet;
use std::time::Instant;

use serde::Serialize;

use sleuth_baselines::common::RootCauseLocator;
use sleuth_baselines::LinearSem;
use sleuth_cluster::{
    dbscan, normalized_ted, DbscanParams, DistanceMatrix, HdbscanParams, OrderedTree,
    TraceSetEncoder,
};
use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_trace::Trace;

use crate::experiments::{
    eval_locator, eval_pipeline_clustered, prepare, AppSpec, EvalScale,
};
use crate::metrics::EvalAccumulator;
use crate::report::Table;

// ---------------------------------------------------------------------------
// Distance metric ablation
// ---------------------------------------------------------------------------

/// One trace-size point of the distance ablation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DistanceRow {
    /// Spans per trace at this point.
    pub spans: usize,
    /// Mean microseconds per pair, weighted Jaccard.
    pub jaccard_us: f64,
    /// Mean microseconds per pair, Zhang–Shasha TED.
    pub ted_us: f64,
    /// TED time / Jaccard time.
    pub speedup: f64,
    /// Rank correlation proxy: fraction of trace pairs ordered the same
    /// way by both distances.
    pub pair_agreement: f64,
}

/// Result of the distance ablation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DistanceAblation {
    /// One row per trace size.
    pub rows: Vec<DistanceRow>,
}

impl DistanceAblation {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: Eq.1 weighted Jaccard vs tree edit distance",
            &["spans", "jaccard µs/pair", "TED µs/pair", "speedup", "pair agreement"],
        );
        for r in &self.rows {
            t.row(&[
                r.spans.to_string(),
                format!("{:.1}", r.jaccard_us),
                format!("{:.1}", r.ted_us),
                format!("{:.1}x", r.speedup),
                format!("{:.2}", r.pair_agreement),
            ]);
        }
        t
    }
}

/// Measure both distances across trace sizes.
pub fn ablation_distance(scale: &EvalScale) -> DistanceAblation {
    let sizes: Vec<usize> = scale.fig5_scales.clone();
    let mut rows = Vec::new();
    for (i, &rpcs) in sizes.iter().enumerate() {
        let prepared = prepare(AppSpec::Synthetic(rpcs), scale, 3_000 + i as u64);
        let traces: Vec<&Trace> = prepared.train.iter().take(12).collect();
        let spans = traces.iter().map(|t| t.len()).max().unwrap_or(0);

        let encoder = TraceSetEncoder::new(3);
        let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
        let trees: Vec<_> = traces.iter().map(|t| OrderedTree::from_trace(t)).collect();

        let mut jd = Vec::new();
        let start = Instant::now();
        for a in 0..sets.len() {
            for b in (a + 1)..sets.len() {
                jd.push(sleuth_cluster::distance::trace_distance(&sets[a], &sets[b]));
            }
        }
        let jaccard_us = start.elapsed().as_micros() as f64 / jd.len() as f64;

        let mut td = Vec::new();
        let start = Instant::now();
        for a in 0..trees.len() {
            for b in (a + 1)..trees.len() {
                td.push(normalized_ted(&trees[a], &trees[b]));
            }
        }
        let ted_us = start.elapsed().as_micros() as f64 / td.len() as f64;

        // Pairwise order agreement between the two metrics.
        let mut agree = 0usize;
        let mut total = 0usize;
        for x in 0..jd.len() {
            for y in (x + 1)..jd.len() {
                total += 1;
                if (jd[x] < jd[y]) == (td[x] < td[y]) {
                    agree += 1;
                }
            }
        }
        rows.push(DistanceRow {
            spans,
            jaccard_us,
            ted_us,
            speedup: ted_us / jaccard_us.max(1e-9),
            pair_agreement: agree as f64 / total.max(1) as f64,
        });
    }
    DistanceAblation { rows }
}

// ---------------------------------------------------------------------------
// Clustering ablation
// ---------------------------------------------------------------------------

/// One clustering configuration's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusteringRow {
    /// Configuration name.
    pub config: String,
    /// F1 of the clustered RCA.
    pub f1: f64,
    /// Exact-match accuracy.
    pub acc: f64,
    /// RCA inferences actually run.
    pub inferences: usize,
    /// Traces covered.
    pub traces: usize,
}

/// Result of the clustering ablation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusteringAblation {
    /// One row per configuration.
    pub rows: Vec<ClusteringRow>,
}

impl ClusteringAblation {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: clustering algorithm",
            &["config", "F1", "ACC", "inferences", "traces"],
        );
        for r in &self.rows {
            t.row(&[
                r.config.clone(),
                format!("{:.3}", r.f1),
                format!("{:.3}", r.acc),
                r.inferences.to_string(),
                r.traces.to_string(),
            ]);
        }
        t
    }
}

/// Compare HDBSCAN, DBSCAN and no clustering on one benchmark.
pub fn ablation_clustering(scale: &EvalScale) -> ClusteringAblation {
    let prepared = prepare(AppSpec::Synthetic(16), scale, 3100);
    let pipeline = SleuthPipeline::fit(
        &prepared.train,
        &PipelineConfig {
            train: TrainConfig {
                epochs: scale.gnn_epochs,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            ..PipelineConfig::default()
        },
    );
    let mut rows = Vec::new();

    // No clustering.
    let acc = eval_locator(&pipeline, &prepared.queries);
    let traces: usize = prepared.queries.iter().map(|q| q.traces.len()).sum();
    rows.push(ClusteringRow {
        config: "none".into(),
        f1: acc.f1(),
        acc: acc.accuracy(),
        inferences: traces,
        traces,
    });

    // HDBSCAN (the pipeline default).
    let acc = eval_pipeline_clustered(&pipeline, &prepared.queries);
    let (reps, total) = crate::experiments::clustering_savings(&pipeline, &prepared.queries);
    rows.push(ClusteringRow {
        config: "hdbscan".into(),
        f1: acc.f1(),
        acc: acc.accuracy(),
        inferences: reps,
        traces: total,
    });

    // DBSCAN over the same distance.
    let encoder = TraceSetEncoder::new(3);
    let mut acc = EvalAccumulator::new();
    let mut inferences = 0usize;
    let mut total = 0usize;
    for q in &prepared.queries {
        let traces: Vec<&Trace> = q.traces.iter().map(|t| &t.trace).collect();
        let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
        let dm = DistanceMatrix::builder().build_from(&sets);
        let clustering = dbscan(
            &dm,
            &DbscanParams {
                eps: 0.15,
                min_points: 3,
            },
        );
        let mut verdicts: Vec<Option<Vec<String>>> = vec![None; traces.len()];
        for c in 0..clustering.n_clusters() as isize {
            let members = clustering.members(c);
            let rep = sleuth_cluster::geometric_median(&dm, &members).expect("non-empty");
            inferences += 1;
            let services = pipeline.localize(traces[rep]);
            for m in members {
                verdicts[m] = Some(services.clone());
            }
        }
        for i in clustering.noise() {
            inferences += 1;
            verdicts[i] = Some(pipeline.localize(traces[i]));
        }
        for (st, v) in q.traces.iter().zip(&verdicts) {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            acc.add_query(v.as_deref().unwrap_or(&[]), &truth);
            total += 1;
        }
    }
    rows.push(ClusteringRow {
        config: "dbscan".into(),
        f1: acc.f1(),
        acc: acc.accuracy(),
        inferences,
        traces: total,
    });

    // A deliberately over-coarse HDBSCAN (epsilon-merged), showing the
    // failure direction §6.2 attributes to the SVDD distance.
    let coarse = SleuthPipeline::from_parts(
        pipeline.rca().model().clone(),
        sleuth_gnn::Featurizer::new(pipeline.rca().model().config().sem_dim),
        &prepared.train,
        &PipelineConfig {
            hdbscan: HdbscanParams {
                min_cluster_size: 5,
                min_samples: 3,
                cluster_selection_epsilon: 0.9,
                allow_single_cluster: true,
            },
            ..PipelineConfig::default()
        },
    );
    let acc = eval_pipeline_clustered(&coarse, &prepared.queries);
    let (reps, total) = crate::experiments::clustering_savings(&coarse, &prepared.queries);
    rows.push(ClusteringRow {
        config: "hdbscan eps=0.9 (over-merged)".into(),
        f1: acc.f1(),
        acc: acc.accuracy(),
        inferences: reps,
        traces: total,
    });

    ClusteringAblation { rows }
}

// ---------------------------------------------------------------------------
// Decoder ablation
// ---------------------------------------------------------------------------

/// One decoder's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecoderRow {
    /// Model name.
    pub model: String,
    /// RCA F1 on the anomaly queries.
    pub f1: f64,
    /// Exact-match accuracy.
    pub acc: f64,
}

/// Result of the decoder ablation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecoderAblation {
    /// One row per decoder.
    pub rows: Vec<DecoderRow>,
}

impl DecoderAblation {
    /// Render as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: decoder non-linearity (§3.4)",
            &["model", "F1", "ACC"],
        );
        for r in &self.rows {
            t.row(&[r.model.clone(), format!("{:.3}", r.f1), format!("{:.3}", r.acc)]);
        }
        t
    }
}

/// GIN vs GCN vs linear SEM on the same benchmark.
pub fn ablation_decoder(scale: &EvalScale) -> DecoderAblation {
    let prepared = prepare(AppSpec::Synthetic(16), scale, 3200);
    let train_cfg = TrainConfig {
        epochs: scale.gnn_epochs,
        batch_traces: 32,
        lr: 1e-2,
        seed: 0,
    };
    let gin = SleuthPipeline::fit(
        &prepared.train,
        &PipelineConfig {
            train: train_cfg,
            ..PipelineConfig::default()
        },
    );
    let gcn = SleuthPipeline::fit(
        &prepared.train,
        &PipelineConfig {
            train: train_cfg,
            ..PipelineConfig::gcn()
        },
    );
    let sem = LinearSem::fit(&prepared.train);

    let rows = vec![
        score("Sleuth-GIN", &gin, &prepared.queries),
        score("Sleuth-GCN", &gcn, &prepared.queries),
        score("Linear SEM", &sem, &prepared.queries),
    ];
    DecoderAblation { rows }
}

fn score(
    name: &str,
    locator: &dyn RootCauseLocator,
    queries: &[sleuth_synth::workload::AnomalyQuery],
) -> DecoderRow {
    let acc = eval_locator(locator, queries);
    DecoderRow {
        model: name.to_string(),
        f1: acc.f1(),
        acc: acc.accuracy(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_ablation_shows_jaccard_speedup() {
        let mut scale = EvalScale::smoke();
        scale.fig5_scales = vec![16, 64];
        let r = ablation_distance(&scale);
        assert_eq!(r.rows.len(), 2);
        // TED must be slower, increasingly so at larger trace sizes.
        for row in &r.rows {
            assert!(row.speedup > 1.0, "TED should be slower: {row:?}");
            assert!((0.0..=1.0).contains(&row.pair_agreement));
        }
        assert!(r.rows[1].speedup >= r.rows[0].speedup * 0.8);
        assert!(!r.table().is_empty());
    }

    #[test]
    fn clustering_ablation_reports_all_configs() {
        let r = ablation_clustering(&EvalScale::smoke());
        assert_eq!(r.rows.len(), 4);
        let none = &r.rows[0];
        let hdb = &r.rows[1];
        assert!(hdb.inferences <= none.inferences);
        assert!(!r.table().is_empty());
    }

    #[test]
    fn decoder_ablation_gnn_beats_linear() {
        let r = ablation_decoder(&EvalScale::smoke());
        assert_eq!(r.rows.len(), 3);
        let gin = &r.rows[0];
        let sem = &r.rows[2];
        assert!(
            gin.f1 + 0.05 >= sem.f1,
            "GIN ({:.3}) should not lose to linear SEM ({:.3})",
            gin.f1,
            sem.f1
        );
    }
}
