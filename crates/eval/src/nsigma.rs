//! The n-sigma rule of thumb (Figure 1).
//!
//! The motivating experiment: flag spans whose duration exceeds
//! `mean + n·σ` of their operation's historical latency and blame their
//! services. Works acceptably on small systems, degrades sharply as the
//! service count grows — heavy-tailed latencies make any fixed `n`
//! either too lax (false positives across hundreds of services) or too
//! strict (missed causes).

use sleuth_baselines::common::{exclusive_error_services, OpKey, OpProfile, RootCauseLocator};
use sleuth_trace::Trace;

/// The n-sigma localisation rule.
#[derive(Debug, Clone, PartialEq)]
pub struct NSigmaRule {
    profile: OpProfile,
    /// The `n` in `mean + n·σ`.
    pub n: f64,
}

impl NSigmaRule {
    /// Fit historical statistics.
    pub fn fit(traces: &[Trace], n: f64) -> Self {
        NSigmaRule {
            profile: OpProfile::fit(traces),
            n,
        }
    }

    /// Reuse a fitted profile with a different `n` (for sweeps).
    pub fn with_profile(profile: OpProfile, n: f64) -> Self {
        NSigmaRule { profile, n }
    }
}

impl RootCauseLocator for NSigmaRule {
    fn name(&self) -> &str {
        "n-sigma"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        if trace.is_error() {
            let errs = exclusive_error_services(trace);
            if !errs.is_empty() {
                return errs;
            }
        }
        let mut out: Vec<String> = Vec::new();
        for (_, s) in trace.iter() {
            let Some(st) = self.profile.get(&OpKey::of(s)) else {
                continue;
            };
            if s.duration_us() as f64 > st.mean_us + self.n * st.std_us
                && !out.iter().any(|o| s.service == *o)
            {
                out.push(s.service.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind};

    fn mk(id: u64, front: u64, db: u64) -> Trace {
        Trace::assemble(vec![
            Span::builder(id, 1, "front", "GET /").time(0, front).build(),
            Span::builder(id, 2, "db", "q")
                .parent(1)
                .kind(SpanKind::Client)
                .time(5, 5 + db)
                .build(),
        ])
        .unwrap()
    }

    fn corpus() -> Vec<Trace> {
        (0..200).map(|i| mk(i, 1_000 + (i % 17), 100 + (i % 13))).collect()
    }

    #[test]
    fn flags_extreme_spans() {
        let rule = NSigmaRule::fit(&corpus(), 3.0);
        let got = rule.localize(&mk(999, 1_005, 10_000));
        assert_eq!(got, vec!["db".to_string()]);
    }

    #[test]
    fn healthy_trace_clean() {
        let rule = NSigmaRule::fit(&corpus(), 3.0);
        assert!(rule.localize(&mk(999, 1_008, 106)).is_empty());
    }

    #[test]
    fn smaller_n_flags_more() {
        let profile = OpProfile::fit(&corpus());
        let strict = NSigmaRule::with_profile(profile.clone(), 6.0);
        let lax = NSigmaRule::with_profile(profile, 0.5);
        let t = mk(999, 1_030, 130);
        assert!(strict.localize(&t).len() <= lax.localize(&t).len());
    }
}
