//! Quickstart: train Sleuth on simulated traffic and localise injected
//! faults.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::collections::BTreeSet;

use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::eval::EvalAccumulator;
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;

fn main() {
    // 1. A synthetic microservice application (16 RPCs across 4
    //    services), simulated instead of deployed on Kubernetes.
    let app = presets::synthetic(16, 1);
    println!(
        "application: {} services, {} RPCs, max {} spans/trace",
        app.num_services(),
        app.num_rpcs(),
        app.max_spans()
    );

    // 2. Train the unsupervised pipeline on healthy traffic.
    let builder = CorpusBuilder::new(&app).seed(7);
    let train = builder.normal_traces(300).plain_traces();
    println!("training on {} healthy traces…", train.len());
    let sleuth = SleuthPipeline::fit(&train, &PipelineConfig::default());

    // 3. Inject chaos faults and collect SLO-violating traces.
    let queries = builder.anomaly_queries(10, 20);
    println!("running {} anomaly queries\n", queries.len());

    // 4. Localise root causes and score against the injection log.
    let mut acc = EvalAccumulator::new();
    for (qi, query) in queries.iter().enumerate() {
        let traces: Vec<_> = query.traces.iter().map(|t| &t.trace).collect();
        let verdicts = sleuth.analyze(&traces, Default::default());
        for (st, v) in query.traces.iter().zip(&verdicts) {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            let outcome = acc.add_query(&v.services, &truth);
            if v.representative {
                println!(
                    "query {qi}: trace {} -> predicted {:?}, injected {:?} ({})",
                    v.trace_idx,
                    v.services,
                    st.ground_truth.services,
                    if outcome.exact { "exact" } else { "partial/miss" }
                );
            }
        }
    }
    println!(
        "\nF1 = {:.3}, exact-match accuracy = {:.3} over {} traces",
        acc.f1(),
        acc.accuracy(),
        acc.queries()
    );
}
