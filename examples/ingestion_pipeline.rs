//! The §4 deployment path, end to end: spans arrive in OpenTelemetry
//! JSON (out of order, batched), flow through the windowed collector
//! into the columnar store, feature engineering runs store-side, and
//! the RCA pipeline consumes the assembled traces.
//!
//! ```text
//! cargo run --release --example ingestion_pipeline
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::store::{BaselineStats, Collector, Query, TraceStore};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::{formats, SpanKind};

fn main() {
    // 1. A "deployed" application produces OTel-JSON span exports.
    let app = presets::synthetic(16, 1);
    let builder = CorpusBuilder::new(&app).seed(42);
    let corpus = builder.mixed_traces(250, 10);
    let all_spans: Vec<_> = corpus
        .traces
        .iter()
        .flat_map(|t| t.trace.spans().iter().cloned())
        .collect();
    let export = formats::to_otel_json(&all_spans);
    println!(
        "collector received {} bytes of OTel JSON ({} spans)",
        export.len(),
        all_spans.len()
    );

    // 2. The collector ingests them out of order, in batches, and
    //    completes traces after an idle window.
    let mut spans = formats::from_otel_json(&export).expect("valid OTel JSON");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    spans.shuffle(&mut rng);

    let mut collector = Collector::new(5_000);
    let mut store = TraceStore::new();
    let mut clock = 0u64;
    for batch in spans.chunks(500) {
        collector.ingest_batch(batch.iter().cloned(), clock);
        clock += 1_000;
        collector.drain_into(&mut store, clock);
    }
    // End of stream: close the window.
    clock += 10_000;
    collector.drain_into(&mut store, clock);
    for leftover in collector.flush() {
        store.extend(leftover);
    }
    println!(
        "store holds {} traces / {} spans after windowed assembly",
        store.trace_count(),
        store.span_count()
    );

    // 3. Store-side operators: per-operation baselines and scans.
    let stats = BaselineStats::compute(&store);
    println!("baseline statistics for {} operations; examples:", stats.len());
    for (key, op) in stats.iter().take(3) {
        println!(
            "  {} {} [{}]: p50 {}µs p95 {}µs err {:.2}%",
            key.service,
            key.name,
            key.kind,
            op.median_us,
            op.p95_us,
            op.error_rate * 100.0
        );
    }
    let slow_servers = Query::new(&store)
        .kind(SpanKind::Server)
        .min_duration_us(100_000)
        .count();
    println!("{slow_servers} server spans above 100 ms");

    // 4. The RCA pipeline trains on the ingested corpus and analyses
    //    fresh anomalies.
    let traces = store.all_traces();
    let sleuth = SleuthPipeline::fit(&traces, &PipelineConfig::default());
    let queries = builder.anomaly_queries(5, 15);
    let mut hits = 0;
    let mut total = 0;
    for q in &queries {
        let batch: Vec<_> = q.traces.iter().map(|t| &t.trace).collect();
        for (st, v) in q.traces.iter().zip(sleuth.analyze(&batch, Default::default())) {
            total += 1;
            if v.services.iter().any(|s| st.ground_truth.services.contains(s)) {
                hits += 1;
            }
        }
    }
    println!("RCA over ingested data: found the injected service in {hits}/{total} anomalous traces");
}
