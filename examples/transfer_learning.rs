//! Transfer learning (§6.5): pre-train Sleuth on one application, then
//! apply it to a different one — zero-shot and with few-shot
//! fine-tuning — using the model registry's lifecycle.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use std::collections::BTreeSet;

use sleuth::baselines::common::RootCauseLocator;
use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::core::ModelRegistry;
use sleuth::eval::EvalAccumulator;
use sleuth::gnn::{EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;

fn accuracy(pipeline: &SleuthPipeline, queries: &[sleuth::synth::workload::AnomalyQuery]) -> f64 {
    let mut acc = EvalAccumulator::new();
    for q in queries {
        for st in &q.traces {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            let pred = pipeline.localize(&st.trace);
            acc.add_query(&pred, &truth);
        }
    }
    acc.accuracy()
}

fn main() {
    let mut featurizer = Featurizer::new(ModelConfig::default().sem_dim);
    let mut registry = ModelRegistry::new();

    // Pre-train on a synthetic 64-RPC application.
    let source = presets::synthetic(64, 5);
    let source_corpus = CorpusBuilder::new(&source)
        .seed(50)
        .normal_traces(300)
        .plain_traces();
    println!("pre-training on {} ({} traces)…", source.name, source_corpus.len());
    let encoded: Vec<EncodedTrace> = source_corpus.iter().map(|t| featurizer.encode(t)).collect();
    let mut pretrained = SleuthModel::new(&ModelConfig::default(), 1);
    let report = pretrained.train(
        &encoded,
        &TrainConfig {
            epochs: 30,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
    );
    println!("  final loss {:.4} in {:?}", report.final_loss(), report.wall);
    let v = registry.create("pretrained-syn64", &pretrained);

    // The unseen target: SockShop.
    let target = presets::sockshop();
    let builder = CorpusBuilder::new(&target).seed(51);
    let target_corpus = builder.normal_traces(300).plain_traces();
    let queries = builder.anomaly_queries(10, 15);

    // Zero-shot: apply the pre-trained model directly.
    let zero_shot = SleuthPipeline::from_parts(
        registry.load("pretrained-syn64").expect("registered"),
        featurizer.clone(),
        &target_corpus,
        &PipelineConfig::default(),
    );
    println!(
        "\nzero-shot accuracy on SockShop: {:.3}",
        accuracy(&zero_shot, &queries)
    );

    // Few-shot fine-tuning with increasing sample counts.
    for samples in [50usize, 150, 300] {
        let mut model = registry.load("pretrained-syn64").expect("registered");
        let subset: Vec<EncodedTrace> = target_corpus[..samples]
            .iter()
            .map(|t| featurizer.encode(t))
            .collect();
        let report = model.train(
            &subset,
            &TrainConfig {
                epochs: 10,
                batch_traces: 32,
                lr: 5e-3,
                seed: 2,
            },
        );
        registry.inherit("sockshop", &model, ("pretrained-syn64", v));
        let tuned = SleuthPipeline::from_parts(
            model,
            featurizer.clone(),
            &target_corpus,
            &PipelineConfig::default(),
        );
        println!(
            "fine-tuned on {samples:>4} samples ({:>6.2?}): accuracy {:.3}",
            report.wall,
            accuracy(&tuned, &queries)
        );
    }

    let latest = registry.latest("sockshop").expect("fine-tuned versions exist");
    println!(
        "\nregistry: {:?}; sockshop@{} lineage: {:?}",
        registry.names(),
        latest.version,
        registry.lineage("sockshop", latest.version)
    );
}
