//! Incident walkthrough on the SockShop benchmark: a payment-service
//! CPU fault degrades `POST /orders`; Sleuth clusters the anomalous
//! traces, analyses one representative per cluster, and names the
//! culprit — compared against the SRE rule of thumb.
//!
//! ```text
//! cargo run --release --example sockshop_incident
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::baselines::common::RootCauseLocator;
use sleuth::baselines::MaxDuration;
use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::synth::chaos::{Fault, FaultKind, FaultPlan, FaultTarget};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::synth::Simulator;

fn main() {
    let app = presets::sockshop();
    println!(
        "SockShop: {} services, {} RPC sites, largest flow = {} ({} spans)",
        app.num_services(),
        app.num_rpcs(),
        app.flows[0].name,
        app.flows[0].span_count()
    );

    // Train on healthy traffic.
    let train = CorpusBuilder::new(&app).seed(11).normal_traces(300).plain_traces();
    println!("training Sleuth on {} healthy traces…", train.len());
    let sleuth = SleuthPipeline::fit(&train, &PipelineConfig::default());

    // The incident: CPU saturation on every payment pod.
    let payment = app
        .services
        .iter()
        .position(|s| s.name == "payment")
        .expect("sockshop has a payment service");
    let plan = FaultPlan {
        faults: (0..app.services[payment].pods.len())
            .map(|pod| Fault {
                kind: FaultKind::CpuStress,
                target: FaultTarget::Pod {
                    service: payment,
                    pod,
                },
                severity: 25.0,
            })
            .collect(),
    };
    println!("\ninjecting CPU stress on payment ({} pods)…", plan.faults.len());

    // Drive traffic through the faulted system; keep the slow traces.
    let sim = Simulator::new(&app);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut anomalous = Vec::new();
    for i in 0..200 {
        let flow = sim.pick_flow(&mut rng);
        let st = sim.simulate(flow, &plan, 10_000 + i, &mut rng);
        if sleuth.detector().is_anomalous(&st.trace) && !st.ground_truth.is_empty() {
            anomalous.push(st.trace);
        }
    }
    println!("collected {} SLO-violating traces", anomalous.len());

    // Clustered RCA: one model inference per cluster representative.
    let verdicts = sleuth.analyze(&anomalous, Default::default());
    let reps: Vec<&sleuth::core::pipeline::RcaResult> =
        verdicts.iter().filter(|v| v.representative).collect();
    println!(
        "clustering reduced {} traces to {} RCA inferences:",
        anomalous.len(),
        reps.len()
    );
    for v in &reps {
        println!(
            "  cluster {:?}: root cause {:?}",
            v.cluster, v.services
        );
    }

    // The rule of thumb, for contrast.
    let max_rule = MaxDuration::new();
    let mut sleuth_hits = 0;
    let mut max_hits = 0;
    for (t, v) in anomalous.iter().zip(&verdicts) {
        if v.services.iter().any(|s| s == "payment") {
            sleuth_hits += 1;
        }
        if max_rule.localize(t).iter().any(|s| s == "payment") {
            max_hits += 1;
        }
    }
    println!(
        "\nblamed payment: Sleuth {}/{} traces, max-duration rule {}/{}",
        sleuth_hits,
        anomalous.len(),
        max_hits,
        anomalous.len()
    );
}
