//! Online serving, end to end: a fitted pipeline goes behind the
//! sharded serving runtime, a chaos workload is replayed as shuffled
//! out-of-order span batches against a logical clock, verdicts stream
//! out while spans stream in, and the final metrics + verdicts are
//! checked against the offline batch pipeline.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use sleuth::core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth::serve::{ModelVersion, ServeConfig, ServeRuntime, Verdict};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;

fn main() {
    // 1. Train the pipeline offline on healthy traffic.
    let app = presets::synthetic(16, 1);
    let builder = CorpusBuilder::new(&app).seed(42);
    let train = builder.normal_traces(300).plain_traces();
    let pipeline = Arc::new(SleuthPipeline::fit(&train, &PipelineConfig::default()));
    println!("pipeline fitted on {} healthy traces", train.len());

    // 2. A chaos workload: mixed healthy/faulty traffic, each trace
    //    arriving 20 ms after the previous one, every span export
    //    jittered and locally reordered — the out-of-order batched
    //    stream a real collector sees.
    let corpus = builder.mixed_traces(300, 10);
    let traces: Vec<_> = corpus.traces.iter().map(|t| &t.trace).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut timed = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let arrival_us = i as u64 * 20_000;
        for s in t.spans() {
            timed.push((arrival_us + rng.gen_range(0..100_000u64), s.clone()));
        }
    }
    timed.sort_by_key(|(at, s)| (*at, s.trace_id, s.span_id));
    println!(
        "replaying {} spans from {} chaos traces (jittered, batched)",
        timed.len(),
        traces.len()
    );

    // 3. Replay through the serving runtime with a logical clock.
    let config = ServeConfig::builder()
        .num_shards(4)
        .shard_queue_capacity(64)
        .build()
        .expect("valid serve config");
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), config).expect("start runtime");
    let mut clock = 0u64;
    let mut live_verdicts: Vec<Verdict> = Vec::new();
    let mut live_polls = 0;
    let mut swapped = false;
    let total_batches = timed.len().div_ceil(400);
    for (batch_no, batch) in timed.chunks_mut(400).enumerate() {
        // Halfway through the replay, hot-swap the model. Publishing
        // the *same* pipeline exercises the swap/drain machinery
        // without changing any verdict: later verdicts simply carry v2.
        if !swapped && batch_no >= total_batches / 2 {
            let version = runtime.publish(Arc::clone(&pipeline));
            println!("hot-swapped model mid-replay: now serving {version}");
            swapped = true;
        }
        clock = batch.iter().map(|(at, _)| *at).max().expect("non-empty");
        batch.shuffle(&mut rng);
        let spans: Vec<_> = batch.iter().map(|(_, s)| s.clone()).collect();
        let report = runtime.submit_batch(spans, clock);
        assert_eq!(report.rejected, 0, "default queues should keep up");
        runtime.tick(clock);
        // Pace the replay slightly so the pipeline stages visibly
        // overlap: verdicts stream out while later batches stream in.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let fresh = runtime.poll_verdicts();
        live_polls += usize::from(!fresh.is_empty());
        live_verdicts.extend(fresh);
    }
    println!(
        "{} verdicts streamed during replay (over {live_polls} polls)",
        live_verdicts.len()
    );
    // End of stream: let every idle window elapse, then drain.
    clock += 10_000_000;
    runtime.tick(clock);
    let mut report = runtime.shutdown();
    live_verdicts.append(&mut report.verdicts);
    let m = &report.metrics;

    println!();
    println!("=== serving metrics ===");
    print!("{}", m.render_text());
    println!(
        "rca latency: mean {:.0}µs, p~95 ≤ {}µs",
        m.rca_latency_us.mean(),
        m.rca_latency_us.quantile_upper_bound(0.95)
    );
    assert!(m.spans_submitted > 0 && m.traces_completed > 0 && m.verdicts_emitted > 0);
    assert_eq!(m.spans_submitted, m.spans_stored + m.spans_dropped() + m.spans_deduped);
    assert_eq!(report.store.trace_count() as u64, m.traces_completed);
    assert_eq!(m.model_swaps, 1, "exactly one mid-replay hot swap");
    let per_version: u64 = m.verdicts_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(per_version, m.verdicts_emitted, "every verdict is version-tagged");
    assert!(
        live_verdicts.iter().all(|v| v.model_version >= ModelVersion(1)),
        "verdict versions start at v1"
    );

    // 4. Cross-check: the online verdicts must match what the batch
    //    pipeline says about the same traces.
    let online: BTreeMap<u64, Vec<String>> = live_verdicts
        .iter()
        .map(|v| (v.trace_id, v.services.clone()))
        .collect();
    let anomalous: Vec<_> = traces
        .iter()
        .filter(|t| pipeline.detector().is_anomalous(t))
        .cloned()
        .collect();
    let batch: BTreeMap<u64, Vec<String>> = anomalous
        .iter()
        .zip(pipeline.analyze(&anomalous, AnalyzeOptions::unclustered()))
        .map(|(t, r)| (t.trace_id(), r.services))
        .collect();
    assert_eq!(online, batch, "online and batch verdicts diverged");
    println!();
    println!(
        "{} online verdicts — identical to the offline batch pipeline",
        online.len()
    );

    // 5. How often did the verdict name the injected service?
    let truth: BTreeMap<u64, _> = corpus
        .traces
        .iter()
        .map(|t| (t.trace.trace_id(), &t.ground_truth.services))
        .collect();
    let hits = live_verdicts
        .iter()
        .filter(|v| {
            truth
                .get(&v.trace_id)
                .is_some_and(|gt| v.services.iter().any(|s| gt.contains(s)))
        })
        .count();
    println!(
        "root cause named the injected service in {hits}/{} verdicts",
        live_verdicts.len()
    );
}
