//! Multi-process sharded serving: a router in this process, two real
//! `sleuth-shardd` child processes over Unix-domain sockets.
//!
//! ```text
//! cargo build --release --bins
//! cargo run --release --example multi_process_serving
//! ```
//!
//! Each shard process fits the same pipeline deterministically from
//! its CLI seed (no weights cross the wire), the router hash-routes
//! span batches with the same `shard_of` the in-process runtime uses,
//! and at shutdown the merged metrics must balance span conservation
//! across process boundaries — the same audit `scripts/tier1.sh`
//! enforces in its loopback smoke test.
//!
//! Override the shard binary with `SLEUTH_SHARDD=/path/to/sleuth-shardd`
//! (defaults to the binary built next to this example).

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::Span;
use sleuth::wire::{Endpoint, RouterClient, RouterConfig};

const SHARDS: usize = 2;

/// Kills the children if the example dies before the clean shutdown.
struct Fleet {
    children: Vec<(usize, Child)>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn shardd_binary() -> PathBuf {
    if let Ok(path) = std::env::var("SLEUTH_SHARDD") {
        return PathBuf::from(path);
    }
    // target/<profile>/examples/multi_process_serving -> target/<profile>/sleuth-shardd
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("examples dir inside a target profile dir");
    profile_dir.join("sleuth-shardd")
}

fn main() {
    let binary = shardd_binary();
    if !binary.exists() {
        eprintln!(
            "shard binary not found at {} — run `cargo build --release --bins` first \
             or set SLEUTH_SHARDD",
            binary.display()
        );
        std::process::exit(2);
    }

    // ---- Spawn the shard fleet --------------------------------------
    let mut endpoints = Vec::new();
    let mut fleet = Fleet {
        children: Vec::new(),
    };
    for shard_id in 0..SHARDS {
        let sock = std::env::temp_dir().join(format!(
            "sleuth-example-{}-{shard_id}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&sock);
        let child = Command::new(&binary)
            .args(["--addr", &format!("unix:{}", sock.display())])
            .args(["--shard-id", &shard_id.to_string()])
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn sleuth-shardd");
        println!(
            "spawned shard {shard_id} (pid {}) on {}",
            child.id(),
            sock.display()
        );
        fleet.children.push((shard_id, child));
        endpoints.push(Endpoint::Unix(sock));
    }

    // ---- Connect the router (retries cover the children's fit) ------
    let mut config = RouterConfig::new(endpoints);
    config.reconnect_attempts = 200;
    let start = Instant::now();
    let mut router = RouterClient::connect(config).expect("connect to shard fleet");
    assert!(router.dead_peers().is_empty(), "a shard never came up");
    println!(
        "router connected to {} shards in {:?}",
        router.num_shards(),
        start.elapsed()
    );

    // ---- Drive a mixed workload through the fleet -------------------
    let app = presets::synthetic(12, 1);
    let batches: Vec<Vec<Span>> = CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(64, 8)
        .traces
        .into_iter()
        .map(|t| t.trace.spans().to_vec())
        .collect();
    let total: usize = batches.iter().map(Vec::len).sum();
    let mut clock = 0u64;
    for batch in batches {
        clock += 1_000;
        router.submit_batch(batch, clock);
    }
    router.tick(clock + 10_000_000);

    // A control round trip while traffic is live: hot-swap drill.
    let versions = router.publish_all();
    println!("published pipeline versions: {versions:?}");

    // ---- Shut down and audit ----------------------------------------
    let report = router.shutdown();
    let m = &report.metrics;
    println!(
        "verdicts={} (degraded {}), quarantined={}, spans routed={} unroutable={}",
        report.verdicts.len(),
        report.verdicts.iter().filter(|v| v.degraded).count(),
        report.quarantined.len(),
        report.wire.spans_routed,
        report.wire.spans_unroutable,
    );
    for (idx, final_state) in report.shard_finals.iter().enumerate() {
        match final_state {
            Some(f) => println!(
                "  shard {idx}: {} traces, {} spans, {} submitted",
                f.trace_count, f.span_count, f.metrics.spans_submitted
            ),
            None => println!("  shard {idx}: no final state (dead)"),
        }
    }
    assert_eq!(report.dead_peers, Vec::<usize>::new(), "no shard may die");
    assert_eq!(
        m.spans_submitted, total as u64,
        "every span reaches a shard"
    );
    assert_eq!(
        m.spans_submitted,
        m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined,
        "cross-process span conservation"
    );

    // ---- Reap the children: clean exits, no orphans -----------------
    // Pop children one at a time so any not yet reaped stay owned by
    // the fleet: a panic mid-loop (or the panic below) still runs the
    // Drop guard, which kills and waits the remainder.
    let deadline = Instant::now() + Duration::from_secs(30);
    while let Some((shard_id, mut child)) = fleet.children.pop() {
        let status = loop {
            match child.try_wait().expect("try_wait") {
                Some(status) => break status,
                None if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                None => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("shard {shard_id} did not exit after shutdown");
                }
            }
        };
        assert!(status.success(), "shard {shard_id} exited with {status}");
        println!("shard {shard_id} exited cleanly");
    }
    println!("multi-process serving: conservation balanced across {SHARDS} processes");
}
