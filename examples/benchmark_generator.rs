//! Synthetic benchmark generation (§5): build a production-scale
//! microservice application, inspect its topology, export its
//! configuration, and watch one simulated request.
//!
//! ```text
//! cargo run --release --example benchmark_generator
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::synth::chaos::FaultPlan;
use sleuth::synth::generator::{generate_app, GeneratorConfig};
use sleuth::synth::Simulator;
use sleuth::trace::Trace;

fn main() {
    // Generate a 256-RPC application like the paper's Synthetic-256.
    let cfg = GeneratorConfig::synthetic(256);
    let app = generate_app(&cfg, 2024);
    println!("generated {}:", app.name);
    println!("  services:       {}", app.num_services());
    println!("  RPC sites:      {}", app.num_rpcs());
    println!("  max spans:      {}", app.max_spans());
    println!("  max depth:      {}", app.max_depth());
    println!("  max out degree: {}", app.max_out_degree());
    println!("  cluster nodes:  {}", app.nodes.len());

    // Tier breakdown.
    for tier in sleuth::synth::Tier::ALL {
        let n = app.services.iter().filter(|s| s.tier == tier).count();
        println!("  {tier:?}: {n} services");
    }

    // The configuration is serialisable — the paper's code generator
    // would turn this into deployable gRPC services.
    let json = serde_json::to_string(&app).expect("app serialises");
    println!("\nconfig JSON: {} bytes", json.len());

    // Simulate one request through the main flow and pretty-print the
    // top of the span tree.
    let sim = Simulator::new(&app);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let st = sim.simulate(0, &FaultPlan::healthy(), 1, &mut rng);
    println!(
        "\none request through '{}': {} spans, {:.1} ms end-to-end",
        app.flows[0].name,
        st.trace.len(),
        st.trace.total_duration_us() as f64 / 1000.0
    );
    print_tree(&st.trace, st.trace.root(), 0, 3);
}

fn print_tree(trace: &Trace, idx: usize, depth: usize, max_depth: usize) {
    if depth > max_depth {
        return;
    }
    let s = trace.span(idx);
    println!(
        "{:indent$}{} {} [{}] {:.2} ms",
        "",
        s.service,
        s.name,
        s.kind,
        s.duration_us() as f64 / 1000.0,
        indent = depth * 2
    );
    for &c in trace.children(idx) {
        print_tree(trace, c, depth + 1, max_depth);
    }
}
