//! Offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`criterion_group!`] and [`criterion_main!`]. Instead of full
//! statistical sampling it runs a warm-up pass plus `sample_size`
//! timed iterations and reports the mean and min wall-clock time per
//! iteration — enough to compare runs by hand and to keep
//! `cargo test`/`cargo bench` compiling and running offline.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batches are sized in [`Bencher::iter_batched`]; the shim runs
/// one setup per measured call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing for one benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return self;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = *bencher.samples.iter().min().expect("non-empty");
        println!(
            "{id:<48} mean {:>12}   min {:>12}   ({} samples)",
            format_duration(mean),
            format_duration(min),
            bencher.samples.len()
        );
        self
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// Declare a benchmark group, mirroring criterion's two invocation
/// forms (plain target list, or `name = ...; config = ...; targets = ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 3);
    }
}
