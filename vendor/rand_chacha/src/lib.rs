//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator behind the [`rand::RngCore`] / [`rand::SeedableRng`]
//! traits.
//!
//! The keystream follows RFC 7539's block function with 8 rounds. The
//! streams are *not* bit-identical to the upstream `rand_chacha`
//! crate's (which consumes the keystream in a different word order),
//! but every consumer in this workspace only relies on determinism for
//! a fixed seed, not on a specific published stream.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce, the 16-word ChaCha state.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word to serve from `block`; 16 means "exhausted".
    word_idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12/13.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        // Roughly uniform: every bucket within generous bounds.
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
