//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shimmed `serde` crate (whose data model is a concrete JSON-like
//! `Value` tree) using only the built-in `proc_macro` API — the build
//! environment has no `syn`/`quote`.
//!
//! Supported shapes: structs with named fields, unit structs, tuple
//! structs, and enums with unit / newtype / tuple / struct variants.
//! Supported `#[serde(...)]` attributes (the surface this workspace
//! uses): `rename_all = "camelCase"` on containers, and `rename`,
//! `default`, `skip_serializing_if = "path"` on fields.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Container- or field-level `#[serde(...)]` attribute values.
#[derive(Default, Clone)]
struct SerdeAttrs {
    rename_all: Option<String>,
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum Shape {
    /// `struct S;`
    Unit,
    /// `struct S(A, B, …);` with the field count.
    Tuple(usize),
    /// `struct S { … }`
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, attrs: SerdeAttrs, shape: Shape },
    // Enum-level serde attrs are parsed (so unsupported ones error)
    // but none of the workspace's enums need them applied.
    Enum { name: String, #[allow(dead_code)] attrs: SerdeAttrs, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    /// Parse leading `#[...]` attributes, folding `#[serde(...)]`
    /// contents into the returned attrs.
    fn parse_attrs(&mut self) -> Result<SerdeAttrs, String> {
        let mut attrs = SerdeAttrs::default();
        while self.eat_punct('#') {
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => return Err("expected [...] after #".into()),
            };
            let mut inner = Cursor::new(group.stream());
            let is_serde = inner.peek_ident("serde");
            if !is_serde {
                continue;
            }
            inner.next();
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                _ => return Err("expected serde(...)".into()),
            };
            let mut items = Cursor::new(args.stream());
            while !items.at_end() {
                let key = match items.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => return Err(format!("unexpected token in serde attr: {other}")),
                    None => break,
                };
                let value = if items.eat_punct('=') {
                    match items.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let s = lit.to_string();
                            Some(s.trim_matches('"').to_string())
                        }
                        _ => return Err("expected string literal in serde attr".into()),
                    }
                } else {
                    None
                };
                match (key.as_str(), value) {
                    ("rename_all", Some(v)) => attrs.rename_all = Some(v),
                    ("rename", Some(v)) => attrs.rename = Some(v),
                    ("default", None) => attrs.default = true,
                    ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
                    (other, _) => {
                        return Err(format!("unsupported serde attribute `{other}` (shim)"))
                    }
                }
                items.eat_punct(',');
            }
        }
        Ok(attrs)
    }

    /// Skip an optional `pub` / `pub(crate)` visibility.
    fn skip_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Skip a type (field type or discriminant): everything until a
    /// top-level `,`, tracking `<`/`>` nesting.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.parse_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, got {other}")),
            None => break,
        };
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        cur.skip_until_comma();
        cur.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut cur = Cursor::new(body);
    let mut n = 0;
    while !cur.at_end() {
        // Each iteration consumes one field (attrs + vis + type).
        let _ = cur.parse_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        cur.skip_until_comma();
        n += 1;
        cur.eat_punct(',');
    }
    n
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let attrs = cur.parse_attrs()?;
    cur.skip_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim: generic type `{name}` unsupported"));
    }
    match kind.as_str() {
        "struct" => {
            let shape = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                _ => return Err(format!("unsupported struct body for `{name}`")),
            };
            Ok(Item::Struct { name, attrs, shape })
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("expected enum body for `{name}`")),
            };
            let mut vcur = Cursor::new(body);
            let mut variants = Vec::new();
            while !vcur.at_end() {
                let _vattrs = vcur.parse_attrs()?;
                if vcur.at_end() {
                    break;
                }
                let vname = match vcur.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => return Err(format!("expected variant name, got {other}")),
                    None => break,
                };
                let shape = match vcur.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        vcur.next();
                        Shape::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        vcur.next();
                        Shape::Tuple(n)
                    }
                    _ => Shape::Unit,
                };
                if vcur.eat_punct('=') {
                    vcur.skip_until_comma();
                }
                vcur.eat_punct(',');
                variants.push(Variant { name: vname, shape });
            }
            Ok(Item::Enum { name, attrs, variants })
        }
        other => Err(format!("cannot derive serde for `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn camel_case(snake: &str) -> String {
    let mut out = String::with_capacity(snake.len());
    let mut upper_next = false;
    for (i, ch) in snake.chars().enumerate() {
        if ch == '_' {
            upper_next = i > 0;
        } else if upper_next {
            out.extend(ch.to_uppercase());
            upper_next = false;
        } else {
            out.push(ch);
        }
    }
    out
}

fn field_key(field: &Field, container: &SerdeAttrs) -> String {
    if let Some(r) = &field.attrs.rename {
        return r.clone();
    }
    match container.rename_all.as_deref() {
        Some("camelCase") => camel_case(&field.name),
        _ => field.name.clone(),
    }
}

fn gen_struct_ser(name: &str, attrs: &SerdeAttrs, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let mut code = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                let key = field_key(f, attrs);
                let insert = format!(
                    "__map.insert(\"{key}\", ::serde::Serialize::to_value(&self.{}));",
                    f.name
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    code.push_str(&format!("if !({pred}(&self.{})) {{ {insert} }}\n", f.name));
                } else {
                    code.push_str(&insert);
                    code.push('\n');
                }
            }
            code.push_str("::serde::Value::Object(__map)");
            code
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_de_fields(fields: &[Field], container: &SerdeAttrs, ty: &str) -> String {
    let mut code = String::new();
    for f in fields {
        let key = field_key(f, container);
        let missing = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"missing field `{key}` in {ty}\"))"
            )
        };
        code.push_str(&format!(
            "{}: match __obj.get(\"{key}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            f.name
        ));
    }
    code
}

fn gen_struct_de(name: &str, attrs: &SerdeAttrs, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::DeError::custom(\"expected null for {name}\")) }}"
        ),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected {n}-element array for {name}\")),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Named(fields) => format!(
            "let __obj = match __v {{\n\
             ::serde::Value::Object(__m) => __m,\n\
             _ => return ::std::result::Result::Err(::serde::DeError::custom(\
             \"expected object for {name}\")),\n\
             }};\n\
             ::std::result::Result::Ok({name} {{\n{}\n}})",
            gen_named_de_fields(fields, attrs, name)
        ),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
            )),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {{\n\
                     let mut __m = ::serde::Map::new();\n\
                     __m.insert(\"{vn}\", {inner});\n\
                     ::serde::Value::Object(__m)\n\
                     }},\n",
                    binds.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                for f in fields {
                    inner.push_str(&format!(
                        "__inner.insert(\"{}\", ::serde::Serialize::to_value({}));\n",
                        f.name, f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{\n\
                     {inner}\
                     let mut __m = ::serde::Map::new();\n\
                     __m.insert(\"{vn}\", ::serde::Value::Object(__inner));\n\
                     ::serde::Value::Object(__m)\n\
                     }},\n",
                    binds.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}\n}}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Shape::Tuple(n) => {
                let build = if *n == 1 {
                    format!("{name}::{vn}(::serde::Deserialize::from_value(__val)?)")
                } else {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __val {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => \
                         {name}::{vn}({}),\n\
                         _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                         \"variant {vn}: expected {n}-element array\")),\n\
                         }}",
                        items.join(", ")
                    )
                };
                data_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({build}),\n"
                ));
            }
            Shape::Named(fields) => {
                let plain = SerdeAttrs::default();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __obj = match __val {{\n\
                     ::serde::Value::Object(__m) => __m,\n\
                     _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"variant {vn}: expected object\")),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}::{vn} {{\n{}\n}})\n\
                     }},\n",
                    gen_named_de_fields(fields, &plain, name)
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         match __v {{\n\
         ::serde::Value::String(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
         \"unknown {name} variant `{{__other}}`\"))),\n\
         }},\n\
         ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
         let (__k, __val) = __m.iter().next().expect(\"len-1 object\");\n\
         match __k.as_str() {{\n\
         {data_arms}\
         __other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
         \"unknown {name} variant `{{__other}}`\"))),\n\
         }}\n\
         }},\n\
         _ => ::std::result::Result::Err(::serde::DeError::custom(\
         \"expected string or single-key object for {name}\")),\n\
         }}\n\
         }}\n\
         }}"
    )
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(Item::Struct { name, attrs, shape }) => match mode {
            Mode::Ser => gen_struct_ser(&name, &attrs, &shape),
            Mode::De => gen_struct_de(&name, &attrs, &shape),
        },
        Ok(Item::Enum { name, variants, .. }) => match mode {
            Mode::Ser => gen_enum_ser(&name, &variants),
            Mode::De => gen_enum_de(&name, &variants),
        },
        Err(msg) => format!("compile_error!(\"serde derive shim: {msg}\");"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde derive shim generated invalid code: {e}\");")
            .parse()
            .expect("compile_error parses")
    })
}

/// Derive the shimmed `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derive the shimmed `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}
