//! Collection strategies (`proptest::collection` subset).

use crate::strategy::{Strategy, TestRng};
use std::ops::Range;

/// Size specification for [`vec`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy generating vectors of elements from an inner strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors of `element`, with `size` either a fixed
/// `usize` or a `Range<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::for_case("v", 0);
        for _ in 0..100 {
            let v = vec(0u64..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let f = vec(0u64..4, 3usize).generate(&mut rng);
            assert_eq!(f.len(), 3);
        }
    }
}
