//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(...)]`, range / tuple / `any::<bool>()` /
//! regex-string strategies, [`collection::vec`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name and case index), so runs
//! are reproducible; there is no shrinking — the failing inputs are
//! printed instead.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

pub mod collection;
pub mod strategy;

pub use strategy::{Strategy, TestRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep CI fast while still sweeping.
        ProptestConfig { cases: 64 }
    }
}

/// Marker for [`any`]: types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The commonly-glob-imported surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Strategy, TestRng};
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run `cases` deterministic property cases; used by [`proptest!`].
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), String>,
) {
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, i);
        if let Err(msg) = case(&mut rng) {
            panic!("proptest `{test_name}` failed on case {i}:\n{msg}");
        }
    }
}

/// Property-test harness macro (shim).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __outcome.map_err(|e| format!("{e}\n  inputs: {}", __inputs))
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(
            pair in (0u64..10, 0.0f64..1.0),
            xs in collection::vec(0u32..5, 0..8),
            fixed in collection::vec(0usize..3, 4),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn bools_and_strings(b in any::<bool>(), s in "[a-c]{0,5}") {
            prop_assert!(b || !b);
            prop_assert!(s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing` failed")]
    fn failures_report_inputs() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        failing();
    }
}
