//! Value-generation strategies (shim: generation only, no shrinking).

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case, stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A way to generate values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Span in u128: `0..=u64::MAX` has 2^64 values, which
                // overflows a u64 span. A full-domain range just takes
                // a raw 64-bit draw.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64);
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
);

/// Fixed value strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Regex-flavoured string strategies
// ---------------------------------------------------------------------------

/// One atom of the tiny pattern language.
enum Atom {
    /// Explicit alternatives from a `[...]` class.
    Class(Vec<char>),
    /// Any printable char (`\PC`): ASCII printable plus a few
    /// multibyte characters to exercise UTF-8 handling.
    Printable,
    /// A literal char.
    Literal(char),
}

struct Pattern {
    atoms: Vec<(Atom, usize, usize)>,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut members = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(&c) = chars.peek() {
        if c == ']' {
            chars.next();
            break;
        }
        chars.next();
        if c == '-' {
            // Range if both endpoints exist; else a literal '-'.
            if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                if hi != ']' {
                    chars.next();
                    for code in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            members.push(ch);
                        }
                    }
                    prev = None;
                    continue;
                }
            }
            members.push('-');
            prev = Some('-');
        } else if c == '\\' {
            if let Some(&esc) = chars.peek() {
                chars.next();
                members.push(esc);
                prev = Some(esc);
            }
        } else {
            members.push(c);
            prev = Some(c);
        }
    }
    members
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().unwrap_or(0);
            let hi = hi.trim().parse().unwrap_or(lo);
            (lo, hi.max(lo))
        }
        None => {
            let n = spec.trim().parse().unwrap_or(1);
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Pattern {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        let atom = match c {
            '[' => {
                chars.next();
                Atom::Class(parse_class(&mut chars))
            }
            '\\' => {
                chars.next();
                match chars.peek() {
                    Some('P') => {
                        chars.next();
                        // `\PC` = not-control; treat as "printable".
                        if chars.peek() == Some(&'C') {
                            chars.next();
                        }
                        Atom::Printable
                    }
                    Some(&esc) => {
                        chars.next();
                        Atom::Literal(esc)
                    }
                    None => break,
                }
            }
            _ => {
                chars.next();
                Atom::Literal(c)
            }
        };
        let (lo, hi) = parse_repeat(&mut chars);
        atoms.push((atom, lo, hi));
    }
    Pattern { atoms }
}

const PRINTABLE_EXTRA: [char; 6] = ['é', 'λ', '中', 'ß', 'Ω', '→'];

impl Strategy for &str {
    type Value = String;

    /// Interpret `self` as a tiny regex subset (char classes, `\PC`,
    /// literals, `{m,n}` repeats) and generate a matching string.
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &pattern.atoms {
            let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
            for _ in 0..n {
                match atom {
                    Atom::Class(members) if !members.is_empty() => {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                    Atom::Class(_) => {}
                    Atom::Printable => {
                        // Mostly ASCII printable, occasionally multibyte.
                        if rng.below(8) == 0 {
                            out.push(PRINTABLE_EXTRA[rng.below(6) as usize]);
                        } else {
                            out.push(char::from_u32(0x20 + rng.below(0x5f) as u32).expect("ascii"));
                        }
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..200 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let (a, b) = ((0u64..5, 1.0f64..2.0)).generate(&mut rng);
            assert!(a < 5 && (1.0..2.0).contains(&b));
        }
    }

    #[test]
    fn char_class_pattern() {
        let mut rng = TestRng::for_case("p", 1);
        for _ in 0..100 {
            let s = "[a-zA-Z/._ -]{0,30}".generate(&mut rng);
            assert!(s.len() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || "/._ -".contains(c)));
        }
    }

    #[test]
    fn printable_pattern() {
        let mut rng = TestRng::for_case("p", 2);
        for _ in 0..100 {
            let s = "\\PC{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(
            (0u64..1000).generate(&mut a),
            (0u64..1000).generate(&mut b)
        );
    }
}
