//! The JSON-shaped value tree all (de)serialization goes through.

/// A number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// Exact conversion to `u64` when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) if i >= 0 => Some(i as u64),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Exact conversion to `i64` when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// An insertion-ordered string-keyed map (objects are small here, so
/// lookups are linear scans).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A dynamically typed serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
