//! Offline stand-in for `serde`.
//!
//! Real serde abstracts over (de)serializers with a visitor-based data
//! model; this workspace only ever converts to and from JSON, so the
//! shim routes everything through a concrete [`Value`] tree instead:
//!
//! * [`Serialize`] — convert `self` into a [`Value`],
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`],
//! * `#[derive(Serialize, Deserialize)]` — provided by the
//!   `serde_derive` shim, honouring the `#[serde(...)]` attributes this
//!   workspace uses (`rename_all = "camelCase"`, `rename`, `default`,
//!   `skip_serializing_if`).
//!
//! `serde_json` (also shimmed) renders [`Value`] to JSON text and
//! parses it back.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError::custom(format!("expected {expected}, got {}", got.kind())))
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_error("bool", v),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => type_error("number", v),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => type_error("number", v),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => type_error("number", v),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => type_error("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => type_error("single-char string", v),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// References and containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => type_error("array", v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => type_error("tuple array", v),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_error("object", v),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_error("object", v),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let f = f64::from_value(&1.5f64.to_value()).unwrap();
        assert!((f - 1.5).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u64, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);

        let mut hm = HashMap::new();
        hm.insert("x".to_string(), 1u64);
        let back: HashMap<String, u64> = Deserialize::from_value(&hm.to_value()).unwrap();
        assert_eq!(back, hm);
    }

    #[test]
    fn out_of_range_rejected() {
        let v = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&v).is_err());
        let v = Value::Number(Number::NegInt(-1));
        assert!(u64::from_value(&v).is_err());
    }
}
