//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored crate
//! sources, so this workspace ships a minimal std-only implementation
//! of exactly the `rand 0.8` API surface it consumes: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, uniform range sampling for the
//! primitive types, `gen_bool`, and the [`seq::SliceRandom`] helpers
//! (`shuffle`, `choose`, `choose_weighted`).
//!
//! Streams are deterministic for a given seed, which is all the
//! simulator and trainers rely on; no claim of statistical quality
//! beyond "good enough for synthetic workload generation" is made.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

pub mod seq;

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire multiply-shift; the tiny modulo bias is
                // irrelevant for workload synthesis.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = low as f64 + unit * (high as f64 - low as f64);
                if (v as $t) >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct XorShift(u64);
    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&c));
            let d: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(42);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = XorShift(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
