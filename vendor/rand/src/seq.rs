//! Slice sampling helpers (`rand::seq` subset).

use crate::Rng;

/// Error returned by [`SliceRandom::choose_weighted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The slice was empty or all weights were zero.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no item to choose from"),
            WeightedError::InvalidWeight => write!(f, "invalid weight"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly choose one element.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Choose one element with probability proportional to `weight`.
    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&Self::Item, WeightedError>
    where
        R: Rng + ?Sized,
        F: Fn(&Self::Item) -> f64;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&T, WeightedError>
    where
        R: Rng + ?Sized,
        F: Fn(&T) -> f64,
    {
        let weights: Vec<f64> = self.iter().map(&weight).collect();
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(WeightedError::InvalidWeight);
        }
        let total: f64 = weights.iter().sum();
        if self.is_empty() || total <= 0.0 {
            return Err(WeightedError::NoItem);
        }
        let mut x = rng.gen_range(0.0..total);
        for (item, w) in self.iter().zip(&weights) {
            if x < *w {
                return Ok(item);
            }
            x -= w;
        }
        Ok(self.last().expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_weighted() {
        let mut rng = Lcg(11);
        let v = [1u32, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let picked = *v.choose_weighted(&mut rng, |&x| x as f64).unwrap();
        assert!(v.contains(&picked));
        let empty: [u32; 0] = [];
        assert_eq!(
            empty.choose_weighted(&mut rng, |_| 1.0),
            Err(WeightedError::NoItem)
        );
    }
}
