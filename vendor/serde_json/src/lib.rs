//! Offline stand-in for `serde_json`: renders the shimmed
//! [`serde::Value`] tree to JSON text and parses JSON text back.

// Vendored shim: exempt from workspace lint style.
#![allow(clippy::all)]

pub use serde::{Map, Number, Value};

use serde::{DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                let mut s = format!("{f}");
                // Keep floats recognisable as floats on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                // JSON has no Inf/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                write_value(item, out, indent, level + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push('}');
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("bad surrogate"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| self.err("bad surrogate"))?,
                                    16,
                                )
                                .map_err(|_| self.err("bad surrogate"))?;
                                self.pos += 4;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if is_float {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("invalid number"))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::PosInt(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::NegInt(i)
        } else {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(n))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document into any shimmed-`Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let v: u64 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let f: f64 = from_str("2.0").unwrap();
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_nested() {
        let data = vec![
            ("a\"b\\c\n".to_string(), vec![1u64, 2, 3]),
            ("unicode: λ中é".to_string(), vec![]),
        ];
        let json = to_string(&data).unwrap();
        let back: Vec<(String, Vec<u64>)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn parses_whitespace_and_pretty() {
        let data = vec![(1u64, "x".to_string())];
        let pretty = to_string_pretty(&data).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u64, String)> = from_str(&pretty).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }
}
