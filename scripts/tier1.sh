#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full workspace test suite (which already
# includes every per-crate suite and integration test — nothing is
# re-run piecemeal), a multi-process loopback smoke test (router + two
# real shard-server processes over Unix-domain sockets), a budgeted
# soak-harness smoke replay, and (for the crates added or reworked
# after the seed) formatting, lint and doc gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

# One run covers everything: unit tests of every workspace crate plus
# all root integration suites (hot_swap, chaos_serving, wire_serving,
# property_invariants, soak_scenarios, ...).
echo "==> cargo test -q (workspace: all crate + integration suites)"
cargo test -q --workspace --offline

# ---- Multi-process loopback smoke -----------------------------------
# Real processes: two sleuth-shardd children behind Unix-domain
# sockets, driven by sleuth-routerd. Pass = router exits 0 (span
# conservation balanced across processes), both shards exit 0, and no
# orphan process survives.
echo "==> loopback smoke: sleuth-routerd + 2x sleuth-shardd over UDS"
SMOKE_DIR=$(mktemp -d)
SHARD_PIDS=()
cleanup_smoke() {
    for pid in "${SHARD_PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT

for i in 0 1; do
    target/release/sleuth-shardd \
        --addr "unix:$SMOKE_DIR/shard$i.sock" --shard-id "$i" \
        >"$SMOKE_DIR/shardd$i.log" 2>&1 &
    SHARD_PIDS+=($!)
done
if ! timeout 120 target/release/sleuth-routerd \
    --shard "unix:$SMOKE_DIR/shard0.sock" --shard "unix:$SMOKE_DIR/shard1.sock" \
    --traces 48 --anomalies 6 >"$SMOKE_DIR/routerd.log" 2>&1; then
    echo "loopback smoke: router failed" >&2
    cat "$SMOKE_DIR"/routerd.log "$SMOKE_DIR"/shardd*.log >&2
    exit 1
fi
grep -q '^ROUTER_CONSERVATION ok$' "$SMOKE_DIR/routerd.log" || {
    echo "loopback smoke: conservation line missing" >&2
    cat "$SMOKE_DIR/routerd.log" >&2
    exit 1
}
SMOKE_FAIL=0
for i in 0 1; do
    pid=${SHARD_PIDS[$i]}
    # The shards should already be exiting; give them a bounded grace
    # period before declaring them orphaned.
    for _ in $(seq 1 250); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.02
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "loopback smoke: shard $i (pid $pid) orphaned after shutdown" >&2
        SMOKE_FAIL=1
    elif ! wait "$pid"; then
        echo "loopback smoke: shard $i exited non-zero" >&2
        cat "$SMOKE_DIR/shardd$i.log" >&2
        SMOKE_FAIL=1
    fi
done
[ "$SMOKE_FAIL" -eq 0 ] || exit 1
SHARD_PIDS=()
grep '^ROUTER_' "$SMOKE_DIR/routerd.log" | sed 's/^/    /'
echo "loopback smoke: OK"

# ---- Soak-harness smoke ---------------------------------------------
# Deterministic replay of every small failure-scenario generator
# (diurnal/flash-crowd, retry storm, cascade, partial deploy,
# multi-tenant) against the live runtime under a lossless chaos plan.
# Pass = exit 0 inside the budget, span conservation exact for every
# scenario, zero escaped panics, and the labelled root cause recovered
# in every injected fault episode (SOAK_RESULT ok).
echo "==> soak smoke: sleuth-soak --smoke (seed 42, budget 60s)"
SOAK_LOG="$SMOKE_DIR/soak.log"
if ! timeout 60 target/release/sleuth-soak --smoke --quiet \
    >"$SOAK_LOG" 2>"$SMOKE_DIR/soak.err"; then
    echo "soak smoke: sleuth-soak failed or overran its 60s budget" >&2
    cat "$SOAK_LOG" >&2
    tail -n 40 "$SMOKE_DIR/soak.err" >&2
    exit 1
fi
grep -q '^SOAK_RESULT ok ' "$SOAK_LOG" || {
    echo "soak smoke: SOAK_RESULT ok line missing" >&2
    cat "$SOAK_LOG" >&2
    exit 1
}
SCENARIOS=$(grep -c '^SOAK_SCENARIO ' "$SOAK_LOG")
CONSERVED=$(grep -c '^SOAK_CONSERVATION ok ' "$SOAK_LOG")
CLEAN_PANICS=$(grep -c '^SOAK_PANICS .* escaped=0$' "$SOAK_LOG")
if [ "$SCENARIOS" -ne 5 ] || [ "$CONSERVED" -ne 5 ] || [ "$CLEAN_PANICS" -ne 5 ]; then
    echo "soak smoke: expected 5 scenarios all conserved with no escaped panics" \
         "(got scenarios=$SCENARIOS conserved=$CONSERVED clean=$CLEAN_PANICS)" >&2
    cat "$SOAK_LOG" >&2
    exit 1
fi
grep -E '^SOAK_(SCENARIO|RESULT) ' "$SOAK_LOG" | sed 's/^/    /'
echo "soak smoke: OK"

echo "==> BENCH_hotpath.json sanity (parses; carries both hot-path metrics)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_hotpath.json") as f:
        data = json.load(f)
except FileNotFoundError:
    sys.exit("BENCH_hotpath.json missing - run scripts/bench.sh")
for key in ("ns_per_span_ingest", "ns_per_pair_distance"):
    v = data.get(key)
    if not isinstance(v, (int, float)) or v <= 0:
        sys.exit(f"BENCH_hotpath.json: metric {key!r} missing or non-positive: {v!r}")
print(f"  ns_per_span_ingest={data['ns_per_span_ingest']} "
      f"ns_per_pair_distance={data['ns_per_pair_distance']}")
EOF

echo "==> BENCH_rca.json sanity (parses; pruning gates hold)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_rca.json") as f:
        data = json.load(f)
except FileNotFoundError:
    sys.exit("BENCH_rca.json missing - run scripts/bench.sh")
ratio = data.get("call_ratio")
if not isinstance(ratio, (int, float)) or ratio <= 0:
    sys.exit(f"BENCH_rca.json: call_ratio missing or non-positive: {ratio!r}")
if ratio > 0.5:
    sys.exit(f"BENCH_rca.json: call_ratio {ratio} exceeds the 0.5 gate")
if data.get("identical_root_cause_sets") != 1:
    sys.exit("BENCH_rca.json: pruned and unpruned verdicts diverged")
print(f"  call_ratio={ratio} p50_speedup={data.get('p50_speedup')} "
      f"identical_root_cause_sets=1")
EOF

GATED="-p sleuth-serve -p sleuth-par -p sleuth-cluster -p sleuth-chaos -p sleuth-wire -p sleuth-synth -p sleuth-soak"

echo "==> cargo fmt --check (serve, par, cluster, chaos, wire, synth, soak)"
# shellcheck disable=SC2086
cargo fmt --check $GATED

echo "==> cargo clippy -D warnings (serve, par, cluster, chaos, wire, synth, soak)"
# shellcheck disable=SC2086
cargo clippy --offline $GATED --all-targets -- -D warnings

echo "==> cargo doc --no-deps -D warnings (gated crates + sleuth-core)"
# shellcheck disable=SC2086
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps $GATED -p sleuth-core

echo "tier-1: OK"
