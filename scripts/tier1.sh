#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full test suite, and (for the crates
# added or reworked after the seed: serve, par, cluster, chaos)
# formatting and lint gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "==> cargo test --test hot_swap (hot-swap + refresh integration)"
cargo test -q --offline --test hot_swap

echo "==> cargo test -p sleuth-chaos (fault-injection harness)"
cargo test -q --offline -p sleuth-chaos

echo "==> cargo test --test chaos_serving (chaos serving integration)"
cargo test -q --offline --test chaos_serving

echo "==> cargo fmt --check (sleuth-serve, sleuth-par, sleuth-cluster, sleuth-chaos)"
cargo fmt --check -p sleuth-serve -p sleuth-par -p sleuth-cluster -p sleuth-chaos

echo "==> cargo clippy -D warnings (sleuth-serve, sleuth-par, sleuth-cluster, sleuth-chaos)"
cargo clippy --offline -p sleuth-serve -p sleuth-par -p sleuth-cluster -p sleuth-chaos --all-targets -- -D warnings

echo "==> cargo doc --no-deps -D warnings (sleuth-serve, sleuth-core, sleuth-par, sleuth-cluster, sleuth-chaos)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p sleuth-serve -p sleuth-core -p sleuth-par -p sleuth-cluster -p sleuth-chaos

echo "tier-1: OK"
