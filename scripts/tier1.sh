#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full workspace test suite (which already
# includes every per-crate suite and integration test — nothing is
# re-run piecemeal), a multi-process loopback smoke test (router + two
# real shard-server processes over Unix-domain sockets), a budgeted
# soak-harness smoke replay, and (for the crates added or reworked
# after the seed) formatting, lint and doc gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

# One run covers everything: unit tests of every workspace crate plus
# all root integration suites (hot_swap, chaos_serving, wire_serving,
# property_invariants, soak_scenarios, ...).
echo "==> cargo test -q (workspace: all crate + integration suites)"
cargo test -q --workspace --offline

# ---- Multi-process loopback smoke -----------------------------------
# Real processes: two sleuth-shardd children behind Unix-domain
# sockets, driven by sleuth-routerd. Pass = router exits 0 (span
# conservation balanced across processes), both shards exit 0, and no
# orphan process survives.
echo "==> loopback smoke: sleuth-routerd + 2x sleuth-shardd over UDS"
SMOKE_DIR=$(mktemp -d)
SHARD_PIDS=()
cleanup_smoke() {
    for pid in "${SHARD_PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT

for i in 0 1; do
    target/release/sleuth-shardd \
        --addr "unix:$SMOKE_DIR/shard$i.sock" --shard-id "$i" \
        >"$SMOKE_DIR/shardd$i.log" 2>&1 &
    SHARD_PIDS+=($!)
done
if ! timeout 120 target/release/sleuth-routerd \
    --shard "unix:$SMOKE_DIR/shard0.sock" --shard "unix:$SMOKE_DIR/shard1.sock" \
    --traces 48 --anomalies 6 >"$SMOKE_DIR/routerd.log" 2>&1; then
    echo "loopback smoke: router failed" >&2
    cat "$SMOKE_DIR"/routerd.log "$SMOKE_DIR"/shardd*.log >&2
    exit 1
fi
grep -q '^ROUTER_CONSERVATION ok$' "$SMOKE_DIR/routerd.log" || {
    echo "loopback smoke: conservation line missing" >&2
    cat "$SMOKE_DIR/routerd.log" >&2
    exit 1
}
SMOKE_FAIL=0
for i in 0 1; do
    pid=${SHARD_PIDS[$i]}
    # The shards should already be exiting; give them a bounded grace
    # period before declaring them orphaned.
    for _ in $(seq 1 250); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.02
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "loopback smoke: shard $i (pid $pid) orphaned after shutdown" >&2
        SMOKE_FAIL=1
    elif ! wait "$pid"; then
        echo "loopback smoke: shard $i exited non-zero" >&2
        cat "$SMOKE_DIR/shardd$i.log" >&2
        SMOKE_FAIL=1
    fi
done
[ "$SMOKE_FAIL" -eq 0 ] || exit 1
SHARD_PIDS=()
grep '^ROUTER_' "$SMOKE_DIR/routerd.log" | sed 's/^/    /'
echo "loopback smoke: OK"

# ---- Failover smoke: kill -9 one shardd mid-run ----------------------
# Three shard processes, paced traffic, one shard SIGKILLed while
# batches are still flowing. Pass = router exits 0 (conservation still
# balanced across processes), at least one failover recorded, and zero
# degraded verdicts: every healthy trace gets its full-fidelity verdict
# from a survivor.
echo "==> failover smoke: kill -9 one of 3 sleuth-shardd mid-run"
for i in 0 1 2; do
    target/release/sleuth-shardd \
        --addr "unix:$SMOKE_DIR/fo$i.sock" --shard-id "$i" \
        >"$SMOKE_DIR/fo-shardd$i.log" 2>&1 &
    SHARD_PIDS+=($!)
done
FO_LOG="$SMOKE_DIR/fo-routerd.log"
timeout 120 target/release/sleuth-routerd \
    --shard "unix:$SMOKE_DIR/fo0.sock" --shard "unix:$SMOKE_DIR/fo1.sock" \
    --shard "unix:$SMOKE_DIR/fo2.sock" \
    --traces 48 --anomalies 6 --pace-ms 10 --connect-retries 2 \
    --hb-interval-ms 25 --hb-miss 2 >"$FO_LOG" 2>&1 &
ROUTER_PID=$!
# Wait for the router to be connected to a fully live fleet, let some
# paced batches land, then kill a shard while traffic is flowing.
for _ in $(seq 1 600); do
    grep -q '^ROUTER_READY ' "$FO_LOG" && break
    sleep 0.1
done
grep -q '^ROUTER_READY shards=3 dead=\[\]$' "$FO_LOG" || {
    echo "failover smoke: fleet never came up live" >&2
    cat "$FO_LOG" "$SMOKE_DIR"/fo-shardd*.log >&2
    exit 1
}
sleep 0.1
kill -9 "${SHARD_PIDS[2]}" 2>/dev/null || true
if ! wait "$ROUTER_PID"; then
    echo "failover smoke: router failed after shard kill" >&2
    cat "$FO_LOG" "$SMOKE_DIR"/fo-shardd*.log >&2
    exit 1
fi
grep -q '^ROUTER_CONSERVATION ok$' "$FO_LOG" || {
    echo "failover smoke: conservation violated after shard kill" >&2
    cat "$FO_LOG" >&2
    exit 1
}
grep -Eq '^ROUTER_FAILOVER failovers=[1-9]' "$FO_LOG" || {
    echo "failover smoke: no failover recorded (kill landed too late?)" >&2
    cat "$FO_LOG" >&2
    exit 1
}
grep -Eq '^ROUTER_VERDICTS total=[0-9]+ degraded=0 ' "$FO_LOG" || {
    echo "failover smoke: degraded verdicts after failover" >&2
    cat "$FO_LOG" >&2
    exit 1
}
# The two survivors must still exit 0 on the router's clean shutdown;
# the killed shard is reaped by the EXIT trap.
for i in 0 1; do
    pid=${SHARD_PIDS[$i]}
    for _ in $(seq 1 250); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.02
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "failover smoke: survivor shard (pid $pid) orphaned" >&2
        exit 1
    elif ! wait "$pid"; then
        echo "failover smoke: survivor shard exited non-zero" >&2
        cat "$SMOKE_DIR"/fo-shardd*.log >&2
        exit 1
    fi
done
wait "${SHARD_PIDS[2]}" 2>/dev/null || true
SHARD_PIDS=()
grep -E '^ROUTER_(FAILOVER|DEAD|CONSERVATION)' "$FO_LOG" | sed 's/^/    /'
echo "failover smoke: OK"

# ---- Soak-harness smoke ---------------------------------------------
# Deterministic replay of every small failure-scenario generator
# (diurnal/flash-crowd, retry storm, cascade, partial deploy,
# multi-tenant) against the live runtime under a lossless chaos plan.
# Pass = exit 0 inside the budget, span conservation exact for every
# scenario, zero escaped panics, and the labelled root cause recovered
# in every injected fault episode (SOAK_RESULT ok).
echo "==> soak smoke: sleuth-soak --smoke (seed 42, budget 60s)"
SOAK_LOG="$SMOKE_DIR/soak.log"
if ! timeout 60 target/release/sleuth-soak --smoke --quiet \
    >"$SOAK_LOG" 2>"$SMOKE_DIR/soak.err"; then
    echo "soak smoke: sleuth-soak failed or overran its 60s budget" >&2
    cat "$SOAK_LOG" >&2
    tail -n 40 "$SMOKE_DIR/soak.err" >&2
    exit 1
fi
grep -q '^SOAK_RESULT ok ' "$SOAK_LOG" || {
    echo "soak smoke: SOAK_RESULT ok line missing" >&2
    cat "$SOAK_LOG" >&2
    exit 1
}
SCENARIOS=$(grep -c '^SOAK_SCENARIO ' "$SOAK_LOG")
CONSERVED=$(grep -c '^SOAK_CONSERVATION ok ' "$SOAK_LOG")
CLEAN_PANICS=$(grep -c '^SOAK_PANICS .* escaped=0$' "$SOAK_LOG")
if [ "$SCENARIOS" -ne 5 ] || [ "$CONSERVED" -ne 5 ] || [ "$CLEAN_PANICS" -ne 5 ]; then
    echo "soak smoke: expected 5 scenarios all conserved with no escaped panics" \
         "(got scenarios=$SCENARIOS conserved=$CONSERVED clean=$CLEAN_PANICS)" >&2
    cat "$SOAK_LOG" >&2
    exit 1
fi
grep -E '^SOAK_(SCENARIO|RESULT) ' "$SOAK_LOG" | sed 's/^/    /'
echo "soak smoke: OK"

echo "==> BENCH_hotpath.json sanity (parses; carries both hot-path metrics)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_hotpath.json") as f:
        data = json.load(f)
except FileNotFoundError:
    sys.exit("BENCH_hotpath.json missing - run scripts/bench.sh")
for key in ("ns_per_span_ingest", "ns_per_pair_distance"):
    v = data.get(key)
    if not isinstance(v, (int, float)) or v <= 0:
        sys.exit(f"BENCH_hotpath.json: metric {key!r} missing or non-positive: {v!r}")
print(f"  ns_per_span_ingest={data['ns_per_span_ingest']} "
      f"ns_per_pair_distance={data['ns_per_pair_distance']}")
EOF

echo "==> BENCH_rca.json sanity (parses; pruning gates hold)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_rca.json") as f:
        data = json.load(f)
except FileNotFoundError:
    sys.exit("BENCH_rca.json missing - run scripts/bench.sh")
ratio = data.get("call_ratio")
if not isinstance(ratio, (int, float)) or ratio <= 0:
    sys.exit(f"BENCH_rca.json: call_ratio missing or non-positive: {ratio!r}")
if ratio > 0.5:
    sys.exit(f"BENCH_rca.json: call_ratio {ratio} exceeds the 0.5 gate")
if data.get("identical_root_cause_sets") != 1:
    sys.exit("BENCH_rca.json: pruned and unpruned verdicts diverged")
print(f"  call_ratio={ratio} p50_speedup={data.get('p50_speedup')} "
      f"identical_root_cause_sets=1")
EOF

echo "==> BENCH_failover.json sanity (parses; detection bound holds)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_failover.json") as f:
        data = json.load(f)
except FileNotFoundError:
    sys.exit("BENCH_failover.json missing - run scripts/bench.sh")
for key in ("p50_us", "p99_us"):
    v = data.get("detection", {}).get(key)
    if not isinstance(v, (int, float)) or v <= 0:
        sys.exit(f"BENCH_failover.json: detection.{key} missing or non-positive: {v!r}")
p99 = data["detection"]["p99_us"]
if p99 > 2_000_000:
    sys.exit(f"BENCH_failover.json: detection p99 {p99}us exceeds the 2s gate")
thru = data.get("verdict_throughput", {}).get("p50_per_sec")
if not isinstance(thru, (int, float)) or thru <= 0:
    sys.exit(f"BENCH_failover.json: verdict_throughput.p50_per_sec missing: {thru!r}")
print(f"  detection p50={data['detection']['p50_us']}us p99={p99}us "
      f"verdicts/s p50={thru}")
EOF

GATED="-p sleuth-serve -p sleuth-par -p sleuth-cluster -p sleuth-chaos -p sleuth-wire -p sleuth-synth -p sleuth-soak"

echo "==> cargo fmt --check (serve, par, cluster, chaos, wire, synth, soak)"
# shellcheck disable=SC2086
cargo fmt --check $GATED

echo "==> cargo clippy -D warnings (serve, par, cluster, chaos, wire, synth, soak)"
# shellcheck disable=SC2086
cargo clippy --offline $GATED --all-targets -- -D warnings

echo "==> cargo doc --no-deps -D warnings (gated crates + sleuth-core)"
# shellcheck disable=SC2086
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps $GATED -p sleuth-core

echo "tier-1: OK"
