#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full test suite, a multi-process
# loopback smoke test (router + two real shard-server processes over
# Unix-domain sockets), and (for the crates added or reworked after
# the seed: serve, par, cluster, chaos, wire) formatting and lint
# gates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q (workspace)"
cargo test -q --workspace --offline

echo "==> cargo test --test hot_swap (hot-swap + refresh integration)"
cargo test -q --offline --test hot_swap

echo "==> cargo test -p sleuth-chaos (fault-injection harness)"
cargo test -q --offline -p sleuth-chaos

echo "==> cargo test --test chaos_serving (chaos serving integration)"
cargo test -q --offline --test chaos_serving

echo "==> cargo test -p sleuth-wire (wire protocol + router/server)"
cargo test -q --offline -p sleuth-wire

echo "==> cargo test --test wire_serving (multi-process serving integration)"
cargo test -q --offline --test wire_serving

# ---- Multi-process loopback smoke -----------------------------------
# Real processes: two sleuth-shardd children behind Unix-domain
# sockets, driven by sleuth-routerd. Pass = router exits 0 (span
# conservation balanced across processes), both shards exit 0, and no
# orphan process survives.
echo "==> loopback smoke: sleuth-routerd + 2x sleuth-shardd over UDS"
SMOKE_DIR=$(mktemp -d)
SHARD_PIDS=()
cleanup_smoke() {
    for pid in "${SHARD_PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT

for i in 0 1; do
    target/release/sleuth-shardd \
        --addr "unix:$SMOKE_DIR/shard$i.sock" --shard-id "$i" \
        >"$SMOKE_DIR/shardd$i.log" 2>&1 &
    SHARD_PIDS+=($!)
done
if ! timeout 120 target/release/sleuth-routerd \
    --shard "unix:$SMOKE_DIR/shard0.sock" --shard "unix:$SMOKE_DIR/shard1.sock" \
    --traces 48 --anomalies 6 >"$SMOKE_DIR/routerd.log" 2>&1; then
    echo "loopback smoke: router failed" >&2
    cat "$SMOKE_DIR"/routerd.log "$SMOKE_DIR"/shardd*.log >&2
    exit 1
fi
grep -q '^ROUTER_CONSERVATION ok$' "$SMOKE_DIR/routerd.log" || {
    echo "loopback smoke: conservation line missing" >&2
    cat "$SMOKE_DIR/routerd.log" >&2
    exit 1
}
SMOKE_FAIL=0
for i in 0 1; do
    pid=${SHARD_PIDS[$i]}
    # The shards should already be exiting; give them a bounded grace
    # period before declaring them orphaned.
    for _ in $(seq 1 250); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.02
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "loopback smoke: shard $i (pid $pid) orphaned after shutdown" >&2
        SMOKE_FAIL=1
    elif ! wait "$pid"; then
        echo "loopback smoke: shard $i exited non-zero" >&2
        cat "$SMOKE_DIR/shardd$i.log" >&2
        SMOKE_FAIL=1
    fi
done
[ "$SMOKE_FAIL" -eq 0 ] || exit 1
SHARD_PIDS=()
grep '^ROUTER_' "$SMOKE_DIR/routerd.log" | sed 's/^/    /'
echo "loopback smoke: OK"

echo "==> cargo test --test property_invariants hotpath_ (interned hot-path invariants)"
cargo test -q --offline --test property_invariants hotpath_

echo "==> BENCH_hotpath.json sanity (parses; carries both hot-path metrics)"
python3 - <<'EOF'
import json, sys
try:
    with open("BENCH_hotpath.json") as f:
        data = json.load(f)
except FileNotFoundError:
    sys.exit("BENCH_hotpath.json missing - run scripts/bench.sh")
for key in ("ns_per_span_ingest", "ns_per_pair_distance"):
    v = data.get(key)
    if not isinstance(v, (int, float)) or v <= 0:
        sys.exit(f"BENCH_hotpath.json: metric {key!r} missing or non-positive: {v!r}")
print(f"  ns_per_span_ingest={data['ns_per_span_ingest']} "
      f"ns_per_pair_distance={data['ns_per_pair_distance']}")
EOF

echo "==> cargo fmt --check (sleuth-serve, sleuth-par, sleuth-cluster, sleuth-chaos, sleuth-wire)"
cargo fmt --check -p sleuth-serve -p sleuth-par -p sleuth-cluster -p sleuth-chaos -p sleuth-wire

echo "==> cargo clippy -D warnings (sleuth-serve, sleuth-par, sleuth-cluster, sleuth-chaos, sleuth-wire)"
cargo clippy --offline -p sleuth-serve -p sleuth-par -p sleuth-cluster -p sleuth-chaos -p sleuth-wire --all-targets -- -D warnings

echo "==> cargo doc --no-deps -D warnings (sleuth-serve, sleuth-core, sleuth-par, sleuth-cluster, sleuth-chaos, sleuth-wire)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p sleuth-serve -p sleuth-core -p sleuth-par -p sleuth-cluster -p sleuth-chaos -p sleuth-wire

echo "tier-1: OK"
