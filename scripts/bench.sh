#!/usr/bin/env bash
# Parallel-scaling benchmark harness.
#
#   scripts/bench.sh [N_THREADS]
#
# Runs the `parallel_scaling` bench binary twice — sequential
# (SLEUTH_THREADS=1) and parallel (SLEUTH_THREADS=N, default: all
# hardware threads) — and writes BENCH_parallel.json with per-bench
# median wall-clock and speedup. The JSON records the machine's
# hardware thread count: on a single-core host the parallel run
# exercises the pool machinery but cannot show real speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

HW_THREADS=$(nproc)
N_THREADS="${1:-$HW_THREADS}"
OUT=BENCH_parallel.json

echo "==> building parallel_scaling bench"
cargo build --offline --release --benches -p bench >/dev/null

run_bench() {
    echo "==> SLEUTH_THREADS=$1 cargo bench parallel_scaling" >&2
    SLEUTH_THREADS="$1" cargo bench --offline -p bench --bench parallel_scaling 2>/dev/null \
        | grep '^PARALLEL_BENCH '
}

SEQ_LINES=$(run_bench 1)
PAR_LINES=$(run_bench "$N_THREADS")

SEQ="$SEQ_LINES" PAR="$PAR_LINES" HW="$HW_THREADS" N="$N_THREADS" OUT="$OUT" python3 - <<'EOF'
import json, os

def parse(block):
    out = {}
    for line in block.strip().splitlines():
        kv = dict(f.split("=", 1) for f in line.split()[1:])
        out[kv["bench"]] = {
            "threads": int(kv["threads"]),
            "median_us": int(kv["median_us"]),
            "samples": int(kv["samples"]),
        }
    return out

seq, par = parse(os.environ["SEQ"]), parse(os.environ["PAR"])
benches = {}
for name in seq:
    s, p = seq[name]["median_us"], par[name]["median_us"]
    benches[name] = {
        "sequential_median_us": s,
        "parallel_median_us": p,
        "parallel_threads": par[name]["threads"],
        "speedup": round(s / p, 3) if p else None,
        "samples": seq[name]["samples"],
    }
result = {
    "hardware_threads": int(os.environ["HW"]),
    "requested_threads": int(os.environ["N"]),
    "note": "speedup is bounded by hardware_threads; on a 1-core host "
            "the parallel run only verifies pool overhead stays small",
    "benches": benches,
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for name, b in benches.items():
    print(f"  {name:20s} seq={b['sequential_median_us']}us "
          f"par={b['parallel_median_us']}us speedup={b['speedup']}x")
EOF
