#!/usr/bin/env bash
# Parallel-scaling benchmark harness.
#
#   scripts/bench.sh [N_THREADS]
#
# Runs the `parallel_scaling` bench binary twice — sequential
# (SLEUTH_THREADS=1) and parallel (SLEUTH_THREADS=N, default: all
# hardware threads) — and writes BENCH_parallel.json with per-bench
# median wall-clock and speedup. The JSON records the machine's
# hardware thread count: on a single-core host the parallel run
# exercises the pool machinery but cannot show real speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

HW_THREADS=$(nproc)
N_THREADS="${1:-$HW_THREADS}"
OUT=BENCH_parallel.json

echo "==> building parallel_scaling bench"
cargo build --offline --release --benches -p bench >/dev/null

run_bench() {
    echo "==> SLEUTH_THREADS=$1 cargo bench parallel_scaling" >&2
    SLEUTH_THREADS="$1" cargo bench --offline -p bench --bench parallel_scaling 2>/dev/null \
        | grep '^PARALLEL_BENCH '
}

SEQ_LINES=$(run_bench 1)
PAR_LINES=$(run_bench "$N_THREADS")

SEQ="$SEQ_LINES" PAR="$PAR_LINES" HW="$HW_THREADS" N="$N_THREADS" OUT="$OUT" python3 - <<'EOF'
import json, os

def parse(block):
    out = {}
    for line in block.strip().splitlines():
        kv = dict(f.split("=", 1) for f in line.split()[1:])
        out[kv["bench"]] = {
            "threads": int(kv["threads"]),
            "median_us": int(kv["median_us"]),
            "samples": int(kv["samples"]),
        }
    return out

seq, par = parse(os.environ["SEQ"]), parse(os.environ["PAR"])
benches = {}
for name in seq:
    s, p = seq[name]["median_us"], par[name]["median_us"]
    benches[name] = {
        "sequential_median_us": s,
        "parallel_median_us": p,
        "parallel_threads": par[name]["threads"],
        "speedup": round(s / p, 3) if p else None,
        "samples": seq[name]["samples"],
    }
result = {
    "hardware_threads": int(os.environ["HW"]),
    "requested_threads": int(os.environ["N"]),
    "note": "speedup is bounded by hardware_threads; on a 1-core host "
            "the parallel run only verifies pool overhead stays small",
    "benches": benches,
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for name, b in benches.items():
    print(f"  {name:20s} seq={b['sequential_median_us']}us "
          f"par={b['parallel_median_us']}us speedup={b['speedup']}x")
EOF

# ---- Wire-protocol loopback benchmark -> BENCH_wire.json ------------
WIRE_OUT=BENCH_wire.json
echo "==> cargo bench wire_loopback (frame codec + loopback serving)" >&2
WIRE_LINES=$(cargo bench --offline -p bench --bench wire_loopback 2>/dev/null \
    | grep '^WIRE_BENCH ')

WIRE="$WIRE_LINES" OUT="$WIRE_OUT" python3 - <<'EOF'
import json, os

benches = {}
payload_bytes = None
for line in os.environ["WIRE"].strip().splitlines():
    kv = dict(f.split("=", 1) for f in line.split()[1:])
    name = kv["bench"]
    if name == "frame_bytes":
        payload_bytes = int(kv["payload_bytes"])
        continue
    frames, spans, us = int(kv["frames"]), int(kv["spans"]), int(kv["median_us"])
    benches[name] = {
        "frames": frames,
        "spans": spans,
        "median_us": us,
        "frames_per_sec": round(frames / (us / 1e6)) if us else None,
        "spans_per_sec": round(spans / (us / 1e6)) if us else None,
        "ns_per_span": round(us * 1000 / spans, 1) if spans else None,
        "samples": int(kv["samples"]),
    }
result = {
    "note": "loopback benches run real shard servers over Unix-domain "
            "sockets and include RCA latency; frame_encode/frame_decode "
            "isolate the codec",
    "encoded_payload_bytes": payload_bytes,
    "benches": benches,
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for name, b in benches.items():
    print(f"  {name:20s} median={b['median_us']}us "
          f"frames/s={b['frames_per_sec']} ns/span={b['ns_per_span']}")
EOF
