#!/usr/bin/env bash
# Parallel-scaling benchmark harness.
#
#   scripts/bench.sh [N_THREADS]
#
# Runs the `parallel_scaling` bench binary twice — sequential
# (SLEUTH_THREADS=1) and parallel (SLEUTH_THREADS=N, default: all
# hardware threads) — and writes BENCH_parallel.json with per-bench
# median wall-clock and speedup. The JSON records the machine's
# hardware thread count: on a single-core host the parallel run
# exercises the pool machinery but cannot show real speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

HW_THREADS=$(nproc)
N_THREADS="${1:-$HW_THREADS}"
OUT=BENCH_parallel.json

echo "==> building parallel_scaling bench"
cargo build --offline --release --benches -p bench >/dev/null

run_bench() {
    echo "==> SLEUTH_THREADS=$1 cargo bench parallel_scaling" >&2
    SLEUTH_THREADS="$1" cargo bench --offline -p bench --bench parallel_scaling 2>/dev/null \
        | grep '^PARALLEL_BENCH '
}

SEQ_LINES=$(run_bench 1)
PAR_LINES=$(run_bench "$N_THREADS")

SEQ="$SEQ_LINES" PAR="$PAR_LINES" HW="$HW_THREADS" N="$N_THREADS" OUT="$OUT" python3 - <<'EOF'
import json, os

def parse(block):
    out = {}
    for line in block.strip().splitlines():
        kv = dict(f.split("=", 1) for f in line.split()[1:])
        out[kv["bench"]] = {
            "threads": int(kv["threads"]),
            "median_us": int(kv["median_us"]),
            "samples": int(kv["samples"]),
        }
    return out

seq, par = parse(os.environ["SEQ"]), parse(os.environ["PAR"])
benches = {}
for name in seq:
    s, p = seq[name]["median_us"], par[name]["median_us"]
    benches[name] = {
        "sequential_median_us": s,
        "parallel_median_us": p,
        "parallel_threads": par[name]["threads"],
        "speedup": round(s / p, 3) if p else None,
        "samples": seq[name]["samples"],
    }
result = {
    "hardware_threads": int(os.environ["HW"]),
    "requested_threads": int(os.environ["N"]),
    "note": "speedup is bounded by hardware_threads; on a 1-core host "
            "the parallel run only verifies pool overhead stays small",
    "benches": benches,
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for name, b in benches.items():
    print(f"  {name:20s} seq={b['sequential_median_us']}us "
          f"par={b['parallel_median_us']}us speedup={b['speedup']}x")
EOF

# ---- Wire-protocol loopback benchmark -> BENCH_wire.json ------------
WIRE_OUT=BENCH_wire.json
echo "==> cargo bench wire_loopback (frame codec + loopback serving)" >&2
WIRE_LINES=$(cargo bench --offline -p bench --bench wire_loopback 2>/dev/null \
    | grep '^WIRE_BENCH ')

WIRE="$WIRE_LINES" OUT="$WIRE_OUT" python3 - <<'EOF'
import json, os

benches = {}
payload_bytes = None
for line in os.environ["WIRE"].strip().splitlines():
    kv = dict(f.split("=", 1) for f in line.split()[1:])
    name = kv["bench"]
    if name == "frame_bytes":
        payload_bytes = int(kv["payload_bytes"])
        continue
    frames, spans, us = int(kv["frames"]), int(kv["spans"]), int(kv["median_us"])
    benches[name] = {
        "frames": frames,
        "spans": spans,
        "median_us": us,
        "frames_per_sec": round(frames / (us / 1e6)) if us else None,
        "spans_per_sec": round(spans / (us / 1e6)) if us else None,
        "ns_per_span": round(us * 1000 / spans, 1) if spans else None,
        "samples": int(kv["samples"]),
    }
result = {
    "note": "loopback benches run real shard servers over Unix-domain "
            "sockets and include RCA latency; frame_encode/frame_decode "
            "isolate the codec",
    "encoded_payload_bytes": payload_bytes,
    "benches": benches,
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for name, b in benches.items():
    print(f"  {name:20s} median={b['median_us']}us "
          f"frames/s={b['frames_per_sec']} ns/span={b['ns_per_span']}")
EOF

# ---- Hot-path kernel benchmark -> BENCH_hotpath.json ----------------
HOT_OUT=BENCH_hotpath.json
echo "==> cargo bench hotpath (interned ingest + sorted-merge distance)" >&2
HOT_LINES=$(cargo bench --offline -p bench --bench hotpath 2>/dev/null \
    | grep '^HOTPATH_BENCH ')

HOT="$HOT_LINES" OUT="$HOT_OUT" python3 - <<'EOF'
import json, os

raw = {}
for line in os.environ["HOT"].strip().splitlines():
    kv = dict(f.split("=", 1) for f in line.split()[1:])
    raw[kv["bench"]] = kv

ingest = raw["ingest_otlp_parse"]
merge = raw["distance_sorted_merge"]
hashed = raw["distance_hashed"]
spans = int(ingest["spans"])
pairs = int(merge["pairs"])
ns_span = round(int(ingest["median_us"]) * 1000 / spans, 1)
ns_merge = round(int(merge["median_us"]) * 1000 / pairs, 2)
ns_hashed = round(int(hashed["median_us"]) * 1000 / pairs, 2)
result = {
    "note": "ingest drives the zero-copy OTLP scanner + reusable-arena "
            "assembly; distance compares the sorted-merge Jaccard kernel "
            "against the legacy hashed BTreeMap merge on the same corpus",
    "ns_per_span_ingest": ns_span,
    "ns_per_pair_distance": ns_merge,
    "ingest": {
        "spans": spans,
        "median_us": int(ingest["median_us"]),
        "samples": int(ingest["samples"]),
    },
    "distance": {
        "pairs": pairs,
        "sorted_merge_median_us": int(merge["median_us"]),
        "hashed_median_us": int(hashed["median_us"]),
        "ns_per_pair_sorted_merge": ns_merge,
        "ns_per_pair_hashed": ns_hashed,
        "speedup_vs_hashed": round(ns_hashed / ns_merge, 2) if ns_merge else None,
        "samples": int(merge["samples"]),
    },
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
print(f"  ingest   {ns_span} ns/span over {spans} spans")
print(f"  distance {ns_merge} ns/pair sorted-merge vs {ns_hashed} ns/pair hashed "
      f"({result['distance']['speedup_vs_hashed']}x)")
EOF

# ---- Counterfactual RCA benchmark -> BENCH_rca.json -----------------
RCA_OUT=BENCH_rca.json
echo "==> cargo bench rca (subtree-pruned vs legacy localisation)" >&2
RCA_LINES=$(cargo bench --offline -p bench --bench rca 2>/dev/null \
    | grep '^RCA_BENCH ')

RCA="$RCA_LINES" OUT="$RCA_OUT" python3 - <<'EOF'
import json, os

modes = {}
summary = {}
for line in os.environ["RCA"].strip().splitlines():
    fields = line.split()[1:]
    if fields[0] == "summary":
        summary = dict(f.split("=", 1) for f in fields[1:])
        continue
    kv = dict(f.split("=", 1) for f in fields)
    modes[kv["mode"]] = {
        "traces": int(kv["traces"]),
        "predict_calls": int(kv["calls"]),
        "predict_calls_per_localisation": float(kv["calls_per_trace"]),
        "p50_us": int(kv["p50_us"]),
        "p99_us": int(kv["p99_us"]),
        "pruned_span_fraction": float(kv["pruned_span_fraction"]),
    }
result = {
    "note": "thousand-service soak scenario; both modes run the identical "
            "candidate ranking and accept logic, the pruned mode reuses one "
            "cached trace encoding per localisation and answers repeated "
            "counterfactual queries as deltas over the live candidate mask",
    "scenario": "thousand_services",
    "pruned": modes["pruned"],
    "unpruned": modes["unpruned"],
    "call_ratio": float(summary["call_ratio"]),
    "p50_speedup": float(summary["speedup"]),
    "identical_root_cause_sets": int(summary["identical_sets"]),
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for mode in ("pruned", "unpruned"):
    b = modes[mode]
    print(f"  {mode:9s} calls/loc={b['predict_calls_per_localisation']} "
          f"p50={b['p50_us']}us p99={b['p99_us']}us")
print(f"  call_ratio={result['call_ratio']} speedup={result['p50_speedup']}x "
      f"identical_sets={result['identical_root_cause_sets']}")
EOF

# ---- Failover benchmark -> BENCH_failover.json ----------------------
FAILOVER_OUT=BENCH_failover.json
echo "==> cargo bench failover (heartbeat detection + failover drain)" >&2
FAILOVER_LINES=$(cargo bench --offline -p bench --bench failover 2>/dev/null \
    | grep '^FAILOVER_BENCH ')

FAILOVER="$FAILOVER_LINES" OUT="$FAILOVER_OUT" python3 - <<'EOF'
import json, os

raw = {}
for line in os.environ["FAILOVER"].strip().splitlines():
    kv = dict(f.split("=", 1) for f in line.split()[1:])
    raw[kv["bench"]] = kv

det = raw["detection"]
total = raw["failover_total"]
thru = raw["verdict_throughput"]
result = {
    "note": "a protocol-complete peer goes mute (socket stays open) so "
            "only heartbeat misses can detect it; detection is mute -> "
            "dead_peers, failover_total is mute -> every verdict drained "
            "after re-routing to the survivor",
    "detection": {
        "p50_us": int(det["p50_us"]),
        "p99_us": int(det["p99_us"]),
        "samples": int(det["samples"]),
    },
    "failover_total": {
        "p50_us": int(total["p50_us"]),
        "p99_us": int(total["p99_us"]),
        "samples": int(total["samples"]),
    },
    "verdict_throughput": {
        "traces": int(thru["traces"]),
        "verdicts": int(thru["verdicts"]),
        "p50_per_sec": int(thru["p50_per_sec"]),
        "min_per_sec": int(thru["min_per_sec"]),
        "samples": int(thru["samples"]),
    },
}
path = os.environ["OUT"]
with open(path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
print(f"  detection p50={result['detection']['p50_us']}us "
      f"p99={result['detection']['p99_us']}us")
print(f"  failover  p50={result['failover_total']['p50_us']}us "
      f"p99={result['failover_total']['p99_us']}us "
      f"verdicts/s p50={result['verdict_throughput']['p50_per_sec']}")
EOF

# ---- Validate every artifact ----------------------------------------
# A bench run that silently wrote a truncated or non-numeric artifact
# poisons every later comparison against it; refuse to exit 0 unless
# all three JSON files parse and carry numeric metrics everywhere a
# number is expected.
echo "==> validating BENCH_parallel.json BENCH_wire.json BENCH_hotpath.json BENCH_rca.json BENCH_failover.json" >&2
python3 - <<'EOF'
import json, sys

failures = []

def num(data, path, positive=True):
    v = data
    for p in path.split("."):
        if not isinstance(v, dict) or p not in v:
            failures.append(f"missing key {path!r}")
            return
        v = v[p]
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        failures.append(f"key {path!r} is not numeric: {v!r}")
    elif positive and v <= 0:
        failures.append(f"key {path!r} is not positive: {v!r}")

def load(name):
    try:
        with open(name) as f:
            return json.load(f)
    except FileNotFoundError:
        failures.append(f"{name} missing")
    except json.JSONDecodeError as e:
        failures.append(f"{name} is not valid JSON: {e}")
    return None

par = load("BENCH_parallel.json")
if par is not None:
    num(par, "hardware_threads")
    num(par, "requested_threads")
    if not isinstance(par.get("benches"), dict) or not par["benches"]:
        failures.append("BENCH_parallel.json: no benches recorded")
    else:
        for name, b in par["benches"].items():
            for key in ("sequential_median_us", "parallel_median_us",
                        "parallel_threads", "speedup", "samples"):
                num(b, key)

wire = load("BENCH_wire.json")
if wire is not None:
    num(wire, "encoded_payload_bytes")
    if not isinstance(wire.get("benches"), dict) or not wire["benches"]:
        failures.append("BENCH_wire.json: no benches recorded")
    else:
        for name, b in wire["benches"].items():
            for key in ("frames", "spans", "median_us", "frames_per_sec",
                        "spans_per_sec", "ns_per_span", "samples"):
                num(b, key)

hot = load("BENCH_hotpath.json")
if hot is not None:
    for key in ("ns_per_span_ingest", "ns_per_pair_distance",
                "ingest.spans", "ingest.median_us", "ingest.samples",
                "distance.pairs", "distance.sorted_merge_median_us",
                "distance.hashed_median_us", "distance.ns_per_pair_sorted_merge",
                "distance.ns_per_pair_hashed", "distance.speedup_vs_hashed",
                "distance.samples"):
        num(hot, key)

rca = load("BENCH_rca.json")
if rca is not None:
    for mode in ("pruned", "unpruned"):
        for key in ("traces", "predict_calls", "predict_calls_per_localisation",
                    "p50_us", "p99_us"):
            num(rca, f"{mode}.{key}")
        num(rca, f"{mode}.pruned_span_fraction", positive=False)
    num(rca, "call_ratio")
    num(rca, "p50_speedup")
    # The acceptance gates: pruning must at least halve the model
    # evaluations on the thousand-service scenario, without changing a
    # single verdict.
    ratio = rca.get("call_ratio")
    if isinstance(ratio, (int, float)) and ratio > 0.5:
        failures.append(f"BENCH_rca.json: call_ratio {ratio} exceeds 0.5 gate")
    if rca.get("identical_root_cause_sets") != 1:
        failures.append("BENCH_rca.json: pruned and unpruned verdicts diverged")

failover = load("BENCH_failover.json")
if failover is not None:
    for key in ("detection.p50_us", "detection.p99_us", "detection.samples",
                "failover_total.p50_us", "failover_total.p99_us",
                "verdict_throughput.traces", "verdict_throughput.verdicts",
                "verdict_throughput.p50_per_sec", "verdict_throughput.min_per_sec"):
        num(failover, key)
    # Detection is bounded by the heartbeat config (10ms interval,
    # miss threshold 2): anything past 2s means the supervisor is not
    # actually driving detection off the miss counter.
    p99 = failover.get("detection", {}).get("p99_us")
    if isinstance(p99, (int, float)) and p99 > 2_000_000:
        failures.append(f"BENCH_failover.json: detection p99 {p99}us exceeds 2s gate")

if failures:
    for f in failures:
        print(f"bench validation: {f}", file=sys.stderr)
    sys.exit(1)
print("bench artifacts: all metrics present and numeric")
EOF
