//! Multi-process serving integration tests: the wire layer's central
//! contract is **fault transparency** — a router fanning batches out
//! to shard-server processes must produce the same verdict set as the
//! single-process runtime, with or without budgeted network chaos in
//! between — plus cross-process span conservation, typed rejection of
//! malformed frames, control-message round trips, and degraded
//! verdicts for dead peers.
//!
//! Shard "processes" here are threads running [`serve_shard`] over
//! real Unix-domain sockets — the full wire stack (frames, sessions,
//! reconnects) with none of the binary-spawning flakiness;
//! `examples/multi_process_serving.rs` covers the true multi-process
//! topology.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sleuth::chaos::{
    corrupt_batch, Corruption, NetFaultPlan, NetInjector, ProcFate, ProcFaultPlan, ProcInjector,
};
use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{shard_of, NoFaults, ServeConfig, ServeRuntime, Verdict};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::{Span, Trace};
use sleuth::wire::{
    encode_frame, serve_shard, Endpoint, Frame, NoWireFaults, RouterClient, RouterConfig,
    ShardFinal, ShardServerConfig, WireError, WireFaultInjector, WireListener, WireMetrics,
    WireStream, HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};

/// One quick-fitted pipeline shared by every test in this file.
fn pipeline() -> Arc<SleuthPipeline> {
    static PIPELINE: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let app = presets::synthetic(12, 1);
        let train = CorpusBuilder::new(&app)
            .seed(5)
            .normal_traces(120)
            .plain_traces();
        let config = PipelineConfig {
            train: TrainConfig {
                epochs: 12,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    }))
}

fn workload(n: usize, anomalies: usize) -> Vec<Trace> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(n, anomalies)
        .traces
        .into_iter()
        .map(|t| t.trace)
        .collect()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        num_shards: 2,
        idle_timeout_us: 1_000_000,
        ..ServeConfig::default()
    }
}

/// Fresh UDS endpoint under the OS temp dir, unique per call.
fn uds_endpoint(tag: &str) -> Endpoint {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    Endpoint::Unix(
        std::env::temp_dir().join(format!("sleuth-wt-{}-{tag}-{n}.sock", std::process::id())),
    )
}

struct ShardHandle {
    handle: JoinHandle<Result<ShardFinal, WireError>>,
    metrics: Arc<WireMetrics>,
}

/// Bind `endpoint` and run a shard server on a background thread.
fn spawn_shard(
    endpoint: &Endpoint,
    shard_id: usize,
    wire_faults: Arc<dyn WireFaultInjector>,
) -> ShardHandle {
    let listener = WireListener::bind(endpoint).expect("bind shard endpoint");
    let metrics = Arc::new(WireMetrics::default());
    let pipeline = pipeline();
    let config = ShardServerConfig::new(shard_id, serve_config());
    let thread_metrics = Arc::clone(&metrics);
    let handle = std::thread::spawn(move || {
        serve_shard(
            &listener,
            pipeline,
            config,
            Arc::new(NoFaults),
            wire_faults,
            thread_metrics,
        )
    });
    ShardHandle { handle, metrics }
}

/// Comparable verdict identity: everything except the latency
/// measurement, which legitimately differs run to run.
type VerdictKey = (u64, Vec<String>, Option<isize>, u64, bool);

fn verdict_key(v: &Verdict) -> VerdictKey {
    (
        v.trace_id,
        v.services.clone(),
        v.cluster,
        v.model_version.0,
        v.degraded,
    )
}

fn verdict_set(verdicts: &[Verdict]) -> BTreeSet<VerdictKey> {
    verdicts.iter().map(verdict_key).collect()
}

fn assert_conservation(m: &sleuth::serve::MetricsSnapshot) {
    assert_eq!(
        m.spans_submitted,
        m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined,
        "span conservation violated: {m:?}"
    );
}

/// Single-process reference: run the in-process runtime over the
/// same traffic and return its verdicts.
fn single_process_reference(traces: &[Trace]) -> Vec<Verdict> {
    let runtime =
        ServeRuntime::start(pipeline(), serve_config()).expect("valid single-process config");
    let mut clock = 0u64;
    for trace in traces {
        runtime.submit_batch(trace.spans().to_vec(), clock);
        clock += 1_000;
    }
    runtime.tick(clock + 2_000_000);
    let report = runtime.shutdown();
    assert_conservation(&report.metrics);
    report.verdicts
}

/// Multi-process run: two shard servers over UDS plus a router, with
/// `faults` injected into every frame writer on both sides. Returns
/// (router report, per-shard wire metrics).
fn multi_process_run(
    traces: &[Trace],
    faults: Arc<dyn WireFaultInjector>,
    router_cfg: impl FnOnce(RouterConfig) -> RouterConfig,
) -> (
    sleuth::wire::RouterReport,
    Vec<sleuth::wire::WireMetricsSnapshot>,
) {
    let endpoints = [uds_endpoint("a"), uds_endpoint("b")];
    let shards: Vec<ShardHandle> = endpoints
        .iter()
        .enumerate()
        .map(|(id, ep)| spawn_shard(ep, id, Arc::clone(&faults)))
        .collect();

    let config = router_cfg(RouterConfig::new(endpoints.to_vec()));
    let mut router = RouterClient::connect_with_injector(config, faults).expect("router connects");
    let mut clock = 0u64;
    for trace in traces {
        let report = router.submit_batch(trace.spans().to_vec(), clock);
        assert_eq!(report.rejected, 0, "no dead peers in this run");
        clock += 1_000;
    }
    router.tick(clock + 2_000_000);
    let report = router.shutdown();

    let mut shard_wire = Vec::new();
    for shard in shards {
        let final_state = shard
            .handle
            .join()
            .expect("shard thread not poisoned")
            .expect("shard exits cleanly");
        assert_conservation(&final_state.metrics);
        shard_wire.push(shard.metrics.snapshot());
    }
    (report, shard_wire)
}

/// The headline gate, fault-free half: a router over two shard-server
/// processes produces exactly the verdict set of the single-process
/// runtime, and span conservation balances across process boundaries.
#[test]
fn multi_process_run_matches_single_process() {
    let traces = workload(60, 8);
    let reference = single_process_reference(&traces);
    let (report, _) = multi_process_run(&traces, Arc::new(NoWireFaults), |c| c);

    assert!(!reference.is_empty(), "workload produced no verdicts");
    assert_eq!(
        verdict_set(&report.verdicts),
        verdict_set(&reference),
        "multi-process verdicts diverge from single-process"
    );
    assert!(report.dead_peers.is_empty());
    assert_eq!(report.shard_finals.iter().flatten().count(), 2);

    // Cross-process conservation: the merged snapshot must balance,
    // and every span the router routed must be accounted for by the
    // shards' merged intake.
    assert_conservation(&report.metrics);
    let total_spans: u64 = traces.iter().map(|t| t.spans().len() as u64).sum();
    assert_eq!(report.metrics.spans_submitted, total_spans);
    assert_eq!(report.wire.spans_routed, total_spans);
    assert_eq!(report.wire.spans_unroutable, 0);
}

/// The headline gate, chaos half: under a seeded, budgeted network
/// fault plan (drops, duplicates, reorders, corruption, a truncated
/// frame, a killed connection, stalled reconnects) the verdict set is
/// *still* identical to the single-process run, faults demonstrably
/// fired, and conservation still balances.
#[test]
fn fault_transparency_under_budgeted_network_chaos() {
    let traces = workload(60, 8);
    let reference = single_process_reference(&traces);

    let injector = Arc::new(NetInjector::new(NetFaultPlan {
        seed: 2024,
        drop_rate: 1.0,
        drop_budget: 2,
        duplicate_rate: 0.25,
        duplicate_budget: 3,
        reorder_rate: 0.25,
        reorder_budget: 3,
        corrupt_rate: 0.5,
        corrupt_budget: 3,
        truncate_rate: 0.05,
        truncate_budget: 1,
        kill_rate: 0.05,
        kill_budget: 1,
        connect_stall: Some(Duration::from_millis(5)),
        connect_stall_budget: 4,
    }));
    let (report, shard_wire) = multi_process_run(
        &traces,
        Arc::clone(&injector) as Arc<dyn WireFaultInjector>,
        |c| c,
    );

    // The rate-1.0 drop class spends its whole budget deterministically
    // (every data frame rolls it until drained); the probabilistic
    // classes fire as their rolls land, which varies with resend
    // timing — so assert the certain class exactly and the rest in
    // aggregate.
    assert_eq!(injector.injected_drops(), 2, "drop budget not spent");
    assert!(injector.injected_total() > 2, "only the drop class fired");
    assert_eq!(
        verdict_set(&report.verdicts),
        verdict_set(&reference),
        "verdicts diverge under network chaos (injected {})",
        injector.injected_total()
    );
    assert_conservation(&report.metrics);
    let total_spans: u64 = traces.iter().map(|t| t.spans().len() as u64).sum();
    assert_eq!(report.metrics.spans_submitted, total_spans);

    // Corrupted frames that reach a reader show up as counted
    // checksum rejections on whichever side received them (router or
    // shard), never as a crash. A corrupt frame can also die in a
    // socket buffer when a kill/truncate severs the connection first,
    // so the count is bounded by, not equal to, the injection count.
    let checksum_rejections = report.wire.rejected("checksum_mismatch")
        + shard_wire
            .iter()
            .map(|m| m.rejected("checksum_mismatch"))
            .sum::<u64>();
    assert!(checksum_rejections <= injector.injected_corrupts());
    assert!(
        injector.injected_corrupts() > 0,
        "corrupt class never fired"
    );
}

/// Malformed, oversized, and corrupt frames from a hostile client are
/// rejected with typed, counted errors — the server drops the
/// connection where the stream is unrecoverable, keeps listening, and
/// a well-behaved router still completes a full run afterwards.
#[test]
fn malformed_frames_are_rejected_and_server_survives() {
    let endpoint = uds_endpoint("hostile");
    let shard = spawn_shard(&endpoint, 0, Arc::new(NoWireFaults));

    // 1. Garbage bytes: bad magic is stream-fatal; server hangs up.
    let garbage = WireStream::connect(&endpoint).expect("connect");
    {
        let mut s = garbage.try_clone().expect("clone");
        s.write_all(b"GET /frames HTTP/1.1\r\nHost: sleuth\r\n\r\n")
            .expect("write garbage");
    }
    wait_for(
        || shard.metrics.snapshot().rejected("bad_magic") == 1,
        "bad magic counted",
    );
    garbage.shutdown_both();

    // 2. Oversized frame: a valid header declaring a 1 GiB payload is
    // rejected from the header alone.
    let oversized = WireStream::connect(&endpoint).expect("connect");
    {
        let mut s = oversized.try_clone().expect("clone");
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        header.push(1); // frame type: Hello
        header.push(0); // flags
        header.extend_from_slice(&(1u32 << 30).to_le_bytes()); // 1 GiB
        header.extend_from_slice(&0u64.to_le_bytes());
        s.write_all(&header).expect("write oversized header");
    }
    wait_for(
        || shard.metrics.snapshot().rejected("oversized") == 1,
        "oversized counted",
    );
    oversized.shutdown_both();

    // 3. Checksum corruption is NOT fatal: the frame is skipped and
    // the same connection still completes the handshake.
    let flaky = WireStream::connect(&endpoint).expect("connect");
    {
        let mut s = flaky.try_clone().expect("clone");
        let mut bytes = encode_frame(
            &Frame::Hello {
                min_version: PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
                session_id: 1,
                resume: false,
            },
            PROTOCOL_VERSION,
        );
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt the payload => checksum mismatch
        s.write_all(&bytes).expect("write corrupt frame");
    }
    wait_for(
        || shard.metrics.snapshot().rejected("checksum_mismatch") == 1,
        "checksum mismatch counted",
    );
    flaky.shutdown_both();

    // 4. The server is still healthy: a real router completes a run.
    let mut router =
        RouterClient::connect(RouterConfig::new(vec![endpoint])).expect("router connects");
    let traces = workload(6, 2);
    let mut clock = 0u64;
    for trace in &traces {
        router.submit_batch(trace.spans().to_vec(), clock);
        clock += 1_000;
    }
    router.tick(clock + 2_000_000);
    let report = router.shutdown();
    assert!(report.dead_peers.is_empty());
    assert_conservation(&report.metrics);
    shard
        .handle
        .join()
        .expect("shard thread not poisoned")
        .expect("shard exits cleanly");
}

fn wait_for(cond: impl Fn() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Control-plane round trips: publish bumps every shard's model
/// version, metrics snapshots stream back mergeable, and quarantine
/// drains carry the *global* shard id that poisoned the trace.
#[test]
fn control_messages_and_quarantine_attribution() {
    let endpoints = [uds_endpoint("c0"), uds_endpoint("c1")];
    let shards: Vec<ShardHandle> = endpoints
        .iter()
        .enumerate()
        .map(|(id, ep)| spawn_shard(ep, id, Arc::new(NoWireFaults)))
        .collect();
    let mut router =
        RouterClient::connect(RouterConfig::new(endpoints.to_vec())).expect("router connects");

    // A structurally corrupt batch: assembly fails at completion and
    // the trace is quarantined by whichever shard owns it.
    let traces = workload(8, 0);
    let poisoned_id = traces[0].trace_id();
    let expected_shard = shard_of(poisoned_id, 2);
    let mut clock = 0u64;
    for (i, trace) in traces.iter().enumerate() {
        let mut spans: Vec<Span> = trace.spans().to_vec();
        if i == 0 {
            corrupt_batch(&mut spans, Corruption::Cycle);
        }
        router.submit_batch(spans, clock);
        clock += 1_000;
    }
    router.tick(clock + 2_000_000);

    // Publish: both shards re-publish and report version 2.
    let versions = router.publish_all();
    assert_eq!(versions, vec![Some(2), Some(2)]);

    // Metrics: every shard answers; merged intake covers the batch.
    let snapshots = router.fetch_metrics();
    assert_eq!(snapshots.iter().flatten().count(), 2);
    let mut merged = sleuth::serve::MetricsSnapshot::default();
    for snapshot in snapshots.iter().flatten() {
        merged.merge(snapshot);
    }
    let total_spans: u64 = traces.iter().map(|t| t.spans().len() as u64).sum();
    assert_eq!(merged.spans_submitted, total_spans);

    // Quarantine: the poisoned trace comes back attributed to the
    // global shard the router hashed it to.
    router.drain_quarantine();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut quarantined = Vec::new();
    while quarantined.is_empty() && Instant::now() < deadline {
        quarantined = router.poll_quarantined();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(quarantined.len(), 1, "poisoned trace not quarantined");
    assert_eq!(quarantined[0].trace_id, Some(poisoned_id));
    assert_eq!(quarantined[0].origin_shard, Some(expected_shard));

    let report = router.shutdown();
    assert!(report.dead_peers.is_empty());
    for shard in shards {
        shard
            .handle
            .join()
            .expect("shard thread not poisoned")
            .expect("shard exits cleanly");
    }
}

/// A shard that is down and stays down, with failover *disabled*: its
/// spans are counted unroutable, each affected trace gets exactly one
/// degraded verdict, and the live shard keeps working. (With failover
/// on — the default — the dead shard's traces would be re-routed to
/// the survivor instead; `failover_rescues_dead_shard_traces` covers
/// that path.)
#[test]
fn dead_peer_yields_degraded_verdicts() {
    let live = uds_endpoint("live");
    let dead = uds_endpoint("dead"); // never bound
    let shard = spawn_shard(&live, 0, Arc::new(NoWireFaults));

    let mut config = RouterConfig::new(vec![live, dead]);
    config.reconnect_attempts = 0; // first failure is final
    config.failover_enabled = false;
    let mut router = RouterClient::connect(config).expect("one live peer is enough");
    assert_eq!(router.dead_peers(), vec![1]);

    let traces = workload(40, 6);
    let mut clock = 0u64;
    let mut live_spans = 0u64;
    let mut dead_spans = 0u64;
    let mut dead_traces = BTreeSet::new();
    for trace in &traces {
        let n = trace.spans().len() as u64;
        if shard_of(trace.trace_id(), 2) == 0 {
            live_spans += n;
        } else {
            dead_spans += n;
            dead_traces.insert(trace.trace_id());
        }
        // Submit each trace twice: degraded verdicts must still be
        // one-per-trace, not one-per-batch.
        router.submit_batch(trace.spans().to_vec(), clock);
        router.submit_batch(trace.spans().to_vec(), clock);
        clock += 1_000;
    }
    assert!(dead_spans > 0, "workload never hit the dead shard");
    router.tick(clock + 2_000_000);
    let report = router.shutdown();

    assert_eq!(report.dead_peers, vec![1]);
    assert_eq!(report.wire.spans_unroutable, dead_spans * 2);
    assert_eq!(report.wire.spans_routed, live_spans * 2);
    assert_eq!(report.wire.degraded_unroutable, dead_traces.len() as u64);

    let degraded: Vec<&Verdict> = report.verdicts.iter().filter(|v| v.degraded).collect();
    let degraded_ids: BTreeSet<u64> = degraded.iter().map(|v| v.trace_id).collect();
    assert_eq!(
        degraded.len(),
        dead_traces.len(),
        "one degraded verdict per trace"
    );
    assert!(degraded_ids.is_superset(&dead_traces));
    for v in &degraded {
        assert!(v.services.is_empty());
        assert_eq!(v.model_version.0, 0);
    }
    // The live shard still analysed its half (duplicate submissions
    // dedup inside the runtime, so real verdicts stay one-per-trace).
    assert!(report.verdicts.iter().any(|v| !v.degraded));

    shard
        .handle
        .join()
        .expect("shard thread not poisoned")
        .expect("shard exits cleanly");
}

// ---- Cluster self-healing: failover, supersede, process chaos ------

/// Failover keyed at connect time: with the default failover-enabled
/// config, traces owned by a shard that is down from the start are
/// re-routed to a rendezvous-chosen survivor instead of being
/// degraded — nothing is unroutable and the verdict set matches the
/// single-process reference exactly.
#[test]
fn failover_rescues_dead_shard_traces() {
    let traces = workload(40, 6);
    let reference = single_process_reference(&traces);

    let live = uds_endpoint("fo-live");
    let dead = uds_endpoint("fo-dead"); // never bound
    let shard = spawn_shard(&live, 0, Arc::new(NoWireFaults));

    let mut config = RouterConfig::new(vec![live, dead]);
    config.reconnect_attempts = 0; // first failure is final
    let mut router = RouterClient::connect(config).expect("one live peer is enough");
    assert_eq!(router.dead_peers(), vec![1]);

    let mut clock = 0u64;
    let mut rerouted = 0u64;
    for trace in &traces {
        if shard_of(trace.trace_id(), 2) == 1 {
            rerouted += 1;
        }
        let report = router.submit_batch(trace.spans().to_vec(), clock);
        assert_eq!(report.rejected, 0, "failover leaves nothing unroutable");
        clock += 1_000;
    }
    assert!(rerouted > 0, "workload never hit the dead shard");
    router.tick(clock + 2_000_000);
    let report = router.shutdown();

    assert_eq!(report.dead_peers, vec![1]);
    assert_eq!(report.wire.spans_unroutable, 0);
    assert_eq!(report.wire.degraded_unroutable, 0);
    let total: u64 = traces.iter().map(|t| t.spans().len() as u64).sum();
    assert_eq!(report.wire.spans_routed, total);
    assert!(report.verdicts.iter().all(|v| !v.degraded));
    assert_eq!(
        verdict_set(&report.verdicts),
        verdict_set(&reference),
        "failover changed verdict content"
    );
    assert_eq!(
        report.verdicts.len(),
        reference.len(),
        "ledger admitted duplicate verdicts"
    );

    shard
        .handle
        .join()
        .expect("shard thread not poisoned")
        .expect("shard exits cleanly");
}

/// Accept-supersede plus buffered failover: a new connection to a busy
/// shard supersedes the serving session (the old socket gets a clean
/// `Goodbye`), the router treats the Goodbye as a peer death, and
/// every trace that shard retained is re-routed to the survivor —
/// verdicts still match the single-process reference with no
/// duplicates and no degradation.
#[test]
fn superseded_session_fails_over_buffered_traces() {
    let traces = workload(32, 5);
    let reference = single_process_reference(&traces);

    let endpoints = [uds_endpoint("ss-a"), uds_endpoint("ss-b")];
    let shard0 = spawn_shard(&endpoints[0], 0, Arc::new(NoWireFaults));
    let _shard1 = spawn_shard(&endpoints[1], 1, Arc::new(NoWireFaults));

    let mut router =
        RouterClient::connect(RouterConfig::new(endpoints.to_vec())).expect("router connects");

    // First half of the traffic lands on both shards, so shard 1
    // retains traces worth failing over.
    let (first, rest) = traces.split_at(traces.len() / 2);
    assert!(
        first.iter().any(|t| shard_of(t.trace_id(), 2) == 1),
        "first half never hit shard 1"
    );
    let mut clock = 0u64;
    for trace in first {
        router.submit_batch(trace.spans().to_vec(), clock);
        clock += 1_000;
    }

    // A usurper connects to shard 1: the serving session is handed a
    // clean Goodbye and the server switches to the new connection.
    let usurper = WireStream::connect(&endpoints[1]).expect("usurper connects");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        router.tick(clock);
        if router.dead_peers() == vec![1] {
            break;
        }
        assert!(Instant::now() < deadline, "router never saw the Goodbye");
        std::thread::sleep(Duration::from_millis(5));
    }

    for trace in rest {
        let report = router.submit_batch(trace.spans().to_vec(), clock);
        assert_eq!(report.rejected, 0, "survivor absorbs rerouted traffic");
        clock += 1_000;
    }
    router.tick(clock + 2_000_000);
    let report = router.shutdown();
    drop(usurper);

    assert_eq!(report.dead_peers, vec![1]);
    assert!(report.wire.shard_failovers >= 1, "no failover recorded");
    assert!(report.wire.traces_failed_over >= 1);
    assert_eq!(report.wire.spans_unroutable, 0);
    assert!(report.verdicts.iter().all(|v| !v.degraded));
    assert_eq!(
        verdict_set(&report.verdicts),
        verdict_set(&reference),
        "supersede + failover changed verdict content"
    );
    assert_eq!(report.verdicts.len(), reference.len());

    shard0
        .handle
        .join()
        .expect("shard thread not poisoned")
        .expect("shard exits cleanly");
    // Shard 1 is parked on its accept loop waiting for a next
    // connection; its thread is detached rather than joined.
}

// ---- Real-process fleet ---------------------------------------------

/// Single-process reference matching the `sleuth-shardd` worker
/// config (`num_shards: 1`; the binary's default fit parameters equal
/// [`pipeline`]'s).
fn single_process_reference_shardd(traces: &[Trace]) -> Vec<Verdict> {
    let config = ServeConfig {
        num_shards: 1,
        idle_timeout_us: 1_000_000,
        ..ServeConfig::default()
    };
    let runtime = ServeRuntime::start(pipeline(), config).expect("valid config");
    let mut clock = 0u64;
    for trace in traces {
        runtime.submit_batch(trace.spans().to_vec(), clock);
        clock += 1_000;
    }
    runtime.tick(clock + 2_000_000);
    let report = runtime.shutdown();
    assert_conservation(&report.metrics);
    report.verdicts
}

/// Send `sig` (e.g. "KILL", "STOP") to `pid` via the system `kill`.
fn signal(pid: u32, sig: &str) {
    let _ = Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .output(); // output(), not status(): swallow ESRCH noise
}

/// Real `sleuth-shardd` children, killed and reaped on drop so a
/// panicking test never leaks processes. Worker pids parsed from
/// `SHARDD_READY` lines are signalled too: under `--respawn` the
/// workers are grandchildren that would outlive their supervisor.
struct Fleet {
    children: Vec<Child>,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Fleet {
    fn new() -> Fleet {
        Fleet {
            children: Vec::new(),
            lines: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn spawn(&mut self, endpoint: &Endpoint, shard_id: usize, extra: &[&str]) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sleuth-shardd"))
            .arg("--addr")
            .arg(endpoint.to_string())
            .arg("--shard-id")
            .arg(shard_id.to_string())
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn sleuth-shardd");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::clone(&self.lines);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                lines.lock().expect("lines lock").push(line);
            }
        });
        self.children.push(child);
    }

    fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("lines lock").clone()
    }

    /// (shard id, pid) pairs announced by `SHARDD_READY` lines, in
    /// announcement order — which is fit-completion order, not shard
    /// order, since the fleet fits concurrently.
    fn ready(&self) -> Vec<(usize, u32)> {
        self.lines()
            .iter()
            .filter(|l| l.starts_with("SHARDD_READY"))
            .filter_map(|l| {
                let field = |key: &str| -> Option<u64> {
                    l.split_whitespace()
                        .find_map(|f| f.strip_prefix(key))
                        .and_then(|v| v.parse().ok())
                };
                Some((field("shard=")? as usize, field("pid=")? as u32))
            })
            .collect()
    }

    /// Latest announced pid for `shard` (a respawned worker announces
    /// again, superseding the dead pid).
    fn pid_of(&self, shard: usize) -> u32 {
        self.ready()
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map(|(_, pid)| *pid)
            .unwrap_or_else(|| panic!("shard {shard} never announced READY"))
    }

    fn ready_pids(&self) -> Vec<u32> {
        self.ready().into_iter().map(|(_, pid)| pid).collect()
    }

    fn wait_ready(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(120);
        while self.ready_pids().len() < n {
            assert!(
                Instant::now() < deadline,
                "shardd fleet never became ready"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for pid in self.ready_pids() {
            signal(pid, "KILL");
        }
        while let Some(mut child) = self.children.pop() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The tentpole gate: under a seeded, budgeted *process* fault plan —
/// one `kill -9` and one `SIGSTOP` stall against three real
/// `sleuth-shardd` processes — the router's verdict set over healthy
/// traces is identical to the fault-free single-process run: no lost
/// episodes, no duplicates, zero degraded verdicts (survivors exist),
/// and merged span conservation stays exact.
#[test]
fn proc_fault_transparency_under_budgeted_process_chaos() {
    let traces = workload(48, 6);
    let reference = single_process_reference_shardd(&traces);

    let endpoints = [uds_endpoint("pf0"), uds_endpoint("pf1"), uds_endpoint("pf2")];
    let mut fleet = Fleet::new();
    for (id, ep) in endpoints.iter().enumerate() {
        fleet.spawn(ep, id, &[]);
    }
    fleet.wait_ready(3);
    let pids: Vec<u32> = (0..3).map(|s| fleet.pid_of(s)).collect();

    let injector = ProcInjector::new(ProcFaultPlan {
        seed: 42,
        num_shards: 3,
        kill_rate: 0.2,
        kill_budget: 1,
        stall_rate: 0.2,
        stall_budget: 1,
        ..ProcFaultPlan::default()
    });

    let mut config = RouterConfig::new(endpoints.to_vec());
    config.reconnect_attempts = 2; // faulted processes never come back
    config.heartbeat.interval = Duration::from_millis(25);
    config.heartbeat.miss_threshold = 2;
    let mut router = RouterClient::connect(config).expect("router connects");

    let mut faulted = BTreeSet::new();
    let mut clock = 0u64;
    for (step, trace) in traces.iter().enumerate() {
        match injector.step_fate(step as u64) {
            ProcFate::Kill(v) | ProcFate::RespawnKill(v) => {
                if faulted.insert(v) {
                    signal(pids[v], "KILL");
                }
            }
            ProcFate::Stall(v) => {
                if faulted.insert(v) {
                    signal(pids[v], "STOP");
                }
            }
            ProcFate::Spare => {}
        }
        clock += 1_000;
        let report = router.submit_batch(trace.spans().to_vec(), clock);
        assert_eq!(report.rejected, 0, "survivors exist; nothing is unroutable");
        // Real time between batches so the stall is detected by missed
        // heartbeats mid-run, not discovered at shutdown.
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(injector.injected_kills(), 1, "kill budget unspent");
    assert_eq!(injector.injected_stalls(), 1, "stall budget unspent");
    assert!(!faulted.is_empty() && faulted.len() <= 2);

    // Every faulted process must be declared dead before shutdown so
    // the final drain only waits on survivors.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        router.tick(clock);
        let dead: BTreeSet<usize> = router.dead_peers().into_iter().collect();
        if faulted.is_subset(&dead) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "faulted shards never declared dead"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    router.tick(clock + 2_000_000);
    let report = router.shutdown();

    assert!(report.wire.shard_failovers >= 1, "no failover recorded");
    assert!(
        report.wire.heartbeats_missed >= 1,
        "the stall never missed a heartbeat"
    );
    assert_eq!(report.wire.spans_unroutable, 0);
    assert!(
        report.verdicts.iter().all(|v| !v.degraded),
        "degraded verdict despite survivors"
    );
    assert_eq!(
        verdict_set(&report.verdicts),
        verdict_set(&reference),
        "verdicts diverge under process chaos"
    );
    assert_eq!(
        report.verdicts.len(),
        reference.len(),
        "duplicate verdicts slipped past the ledger"
    );
    assert_conservation(&report.metrics);
}

/// Satellite: session resume across a real process restart. Kill a
/// shardd worker after its verdicts are delivered; its `--respawn`
/// supervisor restarts it on the same endpoint; the router redials,
/// finds a fresh process (resume denied), resets the session, and
/// restages every retained trace. The respawned worker recomputes the
/// verdicts and the router's exactly-once ledger drops each replay as
/// a duplicate.
#[test]
fn respawned_shardd_replays_and_router_ledger_dedups() {
    let traces = workload(16, 3);
    let reference = single_process_reference_shardd(&traces);
    let expected = reference.len() as u64;
    assert!(expected > 0, "workload produced no verdicts");

    let endpoint = uds_endpoint("respawn");
    let mut fleet = Fleet::new();
    fleet.spawn(
        &endpoint,
        0,
        &["--respawn", "--max-respawns", "2", "--respawn-backoff-ms", "10"],
    );
    fleet.wait_ready(1);
    let worker = fleet.pid_of(0);

    let mut config = RouterConfig::new(vec![endpoint]);
    config.reconnect_attempts = 60; // outlast the worker's refit
    let mut router = RouterClient::connect(config).expect("router connects");

    let mut clock = 0u64;
    for trace in &traces {
        router.submit_batch(trace.spans().to_vec(), clock);
        clock += 1_000;
    }
    router.tick(clock + 2_000_000);

    // Wait until the worker has emitted every verdict: the metrics
    // reply is ordered after the verdict frames on the same socket, so
    // once the counter reads full the router's ledger is populated.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let emitted: u64 = router
            .fetch_metrics()
            .iter()
            .flatten()
            .map(|m| m.verdicts_emitted)
            .sum();
        if emitted >= expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker never emitted all verdicts"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // kill -9 the worker; the supervisor respawns it on the same addr.
    signal(worker, "KILL");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        router.tick(clock + 2_000_000);
        if fleet.ready_pids().len() >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never respawned the worker"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The fresh process denies resume, so the router resets the
    // session and restages its retained traces; a later tick
    // finalizes them and every recomputed verdict hits the ledger.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        router.tick(clock + 4_000_000);
        let emitted: u64 = router
            .fetch_metrics()
            .iter()
            .flatten()
            .map(|m| m.verdicts_emitted)
            .sum();
        if emitted >= expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "respawned worker never recomputed verdicts"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let report = router.shutdown();
    assert!(report.wire.sessions_reset >= 1, "resume was never denied");
    assert_eq!(
        report.wire.verdicts_deduped, expected,
        "replayed verdicts not deduped"
    );
    assert!(report.verdicts.iter().all(|v| !v.degraded));
    assert_eq!(verdict_set(&report.verdicts), verdict_set(&reference));
    assert_eq!(report.verdicts.len(), reference.len());
    assert!(fleet
        .lines()
        .iter()
        .any(|l| l.starts_with("SHARDD_RESPAWN")));

    // Clean shutdown propagates: worker exits 0, supervisor follows
    // and reports how many restarts it performed.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match fleet.children[0].try_wait().expect("wait supervisor") {
            Some(status) => {
                assert!(status.success(), "supervisor exited {status}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "supervisor never exited");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    assert!(fleet
        .lines()
        .iter()
        .any(|l| l.starts_with("SHARDD_SUPERVISOR") && l.contains("respawns_total=1")));
}
