//! Property tests for the soak scenario generators: for every
//! generator kind and across seeds, a fault-free run must produce
//! zero anomaly verdicts, and a faulted run must recover the labelled
//! root-cause set in every injected fault episode — end to end
//! through the live serving runtime, with span conservation exact.

use std::sync::{Arc, OnceLock};

use sleuth::core::pipeline::SleuthPipeline;
use sleuth::soak::{fit_pipeline, run, SoakOptions, SoakOutcome};
use sleuth::synth::scenario::{Scenario, ScenarioKind, ScenarioParams};

const SEEDS: [u64; 2] = [42, 1234];

/// Test-scale params: smaller/shorter than the binary's smoke preset
/// so the whole file stays inside the tier-1 budget, but the same app
/// seed for every small kind — one fitted pipeline serves them all.
fn params() -> ScenarioParams {
    ScenarioParams { duration_us: 300_000_000, ..ScenarioParams::smoke() }
}

/// One quick-fitted pipeline shared by every small-scenario test.
fn pipeline() -> Arc<SleuthPipeline> {
    static PIPELINE: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let probe = Scenario::generate(ScenarioKind::DiurnalFlash, &params(), 0);
        fit_pipeline(&probe, 128, 8, 3.0)
    }))
}

fn soak(scenario: &Scenario, pipeline: Arc<SleuthPipeline>) -> SoakOutcome {
    run(scenario, pipeline, &SoakOptions::default(), |_| {})
}

#[test]
fn fault_free_runs_produce_zero_anomaly_verdicts() {
    for kind in ScenarioKind::SMALL {
        for seed in SEEDS {
            let scenario = Scenario::generate(kind, &params(), seed).fault_free();
            let outcome = soak(&scenario, pipeline());
            assert_eq!(
                outcome.verdicts, 0,
                "{}: fault-free run produced {} verdicts",
                scenario.name, outcome.verdicts
            );
            assert_eq!(outcome.false_anomalies, 0, "{}", scenario.name);
            assert!(outcome.conservation_ok, "{}: span conservation violated", scenario.name);
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                scenario.name,
                outcome.violations
            );
        }
    }
}

#[test]
fn faulted_runs_recover_every_labelled_root_cause() {
    for kind in ScenarioKind::SMALL {
        for seed in SEEDS {
            let scenario = Scenario::generate(kind, &params(), seed);
            let outcome = soak(&scenario, pipeline());
            assert!(!outcome.episodes.is_empty(), "{}", scenario.name);
            for e in &outcome.episodes {
                assert!(
                    e.eligible_traces > 0,
                    "{}: episode {} ({}) produced no detector-visible perturbed traffic",
                    scenario.name,
                    e.index,
                    e.fault
                );
                assert!(
                    e.recovered,
                    "{}: episode {} ({}) not recovered; labelled services {:?}",
                    scenario.name,
                    e.index,
                    e.fault,
                    e.services
                );
            }
            assert_eq!(outcome.false_anomalies, 0, "{}", scenario.name);
            assert!(outcome.conservation_ok, "{}: span conservation violated", scenario.name);
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                scenario.name,
                outcome.violations
            );
            assert!(outcome.precision > 0.99, "{}: precision {}", scenario.name, outcome.precision);
            assert!((outcome.recall - 1.0).abs() < 1e-9, "{}", scenario.name);
        }
    }
}

#[test]
fn retry_storm_schedules_metastable_retries() {
    let scenario = Scenario::generate(ScenarioKind::RetryStorm, &params(), SEEDS[0]);
    let outcome = soak(&scenario, pipeline());
    assert!(outcome.retries > 0, "retry storm replay carried no client retries");
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}

#[test]
fn multi_tenant_run_reports_per_tenant_slos() {
    let scenario = Scenario::generate(ScenarioKind::MultiTenant, &params(), SEEDS[0]);
    let outcome = soak(&scenario, pipeline());
    assert_eq!(outcome.tenants.len(), 3);
    let victim = scenario.episodes[0].label.tenant.clone().expect("labelled tenant");
    let hit = outcome.tenants.iter().find(|t| t.name == victim).expect("victim tenant reported");
    assert!(hit.traces > 0);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}

#[test]
fn thousand_service_topology_soaks_clean() {
    // Its own app (forced up to 1000+ services), so its own pipeline;
    // kept to one short run to stay inside the tier-1 budget.
    let p = ScenarioParams { duration_us: 90_000_000, ..params() };
    let scenario = Scenario::generate(ScenarioKind::ThousandServices, &p, SEEDS[0]);
    assert!(scenario.app.num_services() >= 1000);
    let pipeline = fit_pipeline(&scenario, 64, 4, 3.0);
    let outcome = soak(&scenario, pipeline);
    assert!(outcome.conservation_ok, "span conservation violated");
    for e in &outcome.episodes {
        assert!(e.eligible_traces > 0, "episode {} not eligible", e.index);
        assert!(e.recovered, "episode {} not recovered", e.index);
    }
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}
