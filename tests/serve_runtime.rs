//! Integration tests for the online serving runtime: a chaos corpus
//! replayed as shuffled, duplicated, cross-batch out-of-order span
//! streams must produce exactly the verdicts the offline batch
//! pipeline produces, with every span accounted for.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{ServeConfig, ServeRuntime, ShedPolicy};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::{Span, Trace};

/// One quick-fitted pipeline shared by every test in this file.
fn pipeline() -> Arc<SleuthPipeline> {
    static PIPELINE: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let app = presets::synthetic(12, 1);
        let train = CorpusBuilder::new(&app).seed(5).normal_traces(120).plain_traces();
        let config = PipelineConfig {
            train: TrainConfig { epochs: 12, batch_traces: 32, lr: 1e-2, seed: 0 },
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    }))
}

fn chaos_traces(n: usize) -> Vec<Trace> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(n, 8)
        .traces
        .into_iter()
        .map(|t| t.trace)
        .collect()
}

#[test]
fn shuffled_duplicated_stream_matches_batch_pipeline() {
    let pipeline = pipeline();
    let traces = chaos_traces(80);

    // Shuffle all spans globally (cross-batch out-of-order) and
    // retransmit every 5th span.
    let mut spans: Vec<Span> = traces.iter().flat_map(|t| t.spans().to_vec()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    spans.shuffle(&mut rng);
    let duplicates: Vec<Span> = spans.iter().step_by(5).cloned().collect();
    let unique = spans.len();
    spans.extend(duplicates);
    spans.shuffle(&mut rng);

    // Replay: the clock advances far less than the idle window per
    // batch, so shuffling cannot split a trace across completions.
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
        num_shards: 4,
        idle_timeout_us: 1_000_000,
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    let mut clock = 0;
    for batch in spans.chunks(300) {
        let report = runtime.submit_batch(batch.to_vec(), clock);
        assert_eq!(report.rejected + report.shed, 0, "no overload expected");
        clock += 1_000;
    }
    clock += 2_000_000;
    runtime.tick(clock);
    let report = runtime.shutdown();
    let m = &report.metrics;

    // Every trace assembled exactly once, every span accounted for.
    assert_eq!(m.traces_completed, traces.len() as u64);
    assert_eq!(m.traces_malformed, 0);
    assert_eq!(report.store.trace_count(), traces.len());
    assert_eq!(report.store.span_count(), unique);
    assert_eq!(m.spans_deduped, (spans.len() - unique) as u64);
    assert_eq!(
        m.spans_submitted,
        m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
    );

    // Verdicts identical to the batch pipeline over the same corpus.
    let online: BTreeMap<u64, Vec<String>> = report
        .verdicts
        .iter()
        .map(|v| (v.trace_id, v.services.clone()))
        .collect();
    assert_eq!(online.len(), report.verdicts.len(), "duplicate verdicts");
    let anomalous: Vec<Trace> = traces
        .iter()
        .filter(|t| pipeline.detector().is_anomalous(t))
        .cloned()
        .collect();
    let batch: BTreeMap<u64, Vec<String>> = anomalous
        .iter()
        .zip(pipeline.analyze(&anomalous, AnalyzeOptions::unclustered()))
        .map(|(t, r)| (t.trace_id(), r.services))
        .collect();
    assert!(!batch.is_empty(), "chaos corpus produced no anomalies");
    assert_eq!(online, batch);
}

/// Rebadge one anomalous trace's spans under a fresh trace id.
fn rebadged(spans: &[Span], trace_id: u64) -> Vec<Span> {
    spans
        .iter()
        .cloned()
        .map(|mut s| {
            s.trace_id = trace_id;
            s
        })
        .collect()
}

#[test]
fn backpressure_rejects_under_undersized_queue() {
    let pipeline = pipeline();
    let traces = chaos_traces(40);
    let anomalous = traces
        .iter()
        .find(|t| pipeline.detector().is_anomalous(t))
        .expect("chaos corpus contains an anomaly");

    // Single shard, single-slot queues: once a tick completes many
    // anomalous traces at once, the shard worker blocks pushing them
    // into the one-slot RCA queue (localisation takes real time per
    // trace), the shard queue stays full, and submits bounce.
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
        num_shards: 1,
        shard_queue_capacity: 1,
        rca_queue_capacity: 1,
        idle_timeout_us: 1_000,
        shed_policy: ShedPolicy::Reject,
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    for i in 0..40u64 {
        let spans = rebadged(anomalous.spans(), 10_000 + i);
        while runtime.submit_batch(spans.clone(), 0).rejected > 0 {
            std::thread::yield_now();
        }
    }
    runtime.tick(1_000_000);

    let mut rejected = 0;
    for i in 0..200u64 {
        let spans = rebadged(anomalous.spans(), 20_000 + i);
        rejected += runtime.submit_batch(spans, 2_000_000 + i).rejected;
    }
    assert!(rejected > 0, "undersized queue never pushed back");

    let report = runtime.shutdown();
    assert!(report.metrics.spans_rejected > 0);
    assert_eq!(
        report.metrics.spans_submitted,
        report.metrics.spans_stored
            + report.metrics.spans_rejected
            + report.metrics.spans_shed
            + report.metrics.spans_evicted
            + report.metrics.spans_deduped
    );
}

#[test]
fn drop_oldest_sheds_under_undersized_queue() {
    let pipeline = pipeline();
    let traces = chaos_traces(20);
    let anomalous = traces
        .iter()
        .find(|t| pipeline.detector().is_anomalous(t))
        .expect("chaos corpus contains an anomaly");

    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
        num_shards: 1,
        shard_queue_capacity: 1,
        rca_queue_capacity: 1,
        idle_timeout_us: 1_000,
        shed_policy: ShedPolicy::DropOldest,
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    let mut shed = 0;
    for i in 0..40u64 {
        shed += runtime.submit_batch(rebadged(anomalous.spans(), 30_000 + i), 0).shed;
    }
    runtime.tick(1_000_000);
    for i in 0..200u64 {
        shed += runtime
            .submit_batch(rebadged(anomalous.spans(), 40_000 + i), 2_000_000 + i)
            .shed;
    }
    assert!(shed > 0, "drop-oldest policy never shed");
    let report = runtime.shutdown();
    assert_eq!(report.metrics.spans_shed, shed as u64);
    assert_eq!(
        report.metrics.spans_submitted,
        report.metrics.spans_stored
            + report.metrics.spans_rejected
            + report.metrics.spans_shed
            + report.metrics.spans_evicted
            + report.metrics.spans_deduped
    );
}

#[test]
fn collector_caps_shed_inside_shards() {
    let pipeline = pipeline();
    let traces = chaos_traces(30);
    let spans: Vec<Span> = traces.iter().flat_map(|t| t.spans().to_vec()).collect();

    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
        num_shards: 2,
        idle_timeout_us: 1 << 40, // nothing completes: caps must act
        collector_caps: sleuth::store::CollectorCaps {
            max_pending_traces: 3,
            max_buffered_spans: usize::MAX,
        },
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    runtime.submit_batch(spans, 1);
    let report = runtime.shutdown();
    let m = &report.metrics;
    assert!(m.spans_evicted > 0, "caps never evicted");
    assert!(report.store.trace_count() <= 6, "at most 3 pending per shard survive");
    assert_eq!(
        m.spans_submitted,
        m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
    );
}

#[test]
fn verdict_set_invariant_to_rca_workers() {
    let pipeline = pipeline();
    let traces = chaos_traces(60);
    let spans: Vec<Span> = traces.iter().flat_map(|t| t.spans().to_vec()).collect();

    let mut runs: Vec<BTreeMap<u64, Vec<String>>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
            num_shards: 2,
            rca_workers: workers,
            idle_timeout_us: 1_000_000,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        let mut clock = 0;
        for batch in spans.chunks(250) {
            let report = runtime.submit_batch(batch.to_vec(), clock);
            assert_eq!(report.rejected + report.shed, 0, "no overload expected");
            clock += 1_000;
        }
        runtime.tick(clock + 2_000_000);
        let report = runtime.shutdown();

        let verdicts: BTreeMap<u64, Vec<String>> = report
            .verdicts
            .iter()
            .map(|v| (v.trace_id, v.services.clone()))
            .collect();
        assert_eq!(verdicts.len(), report.verdicts.len(), "duplicate verdicts");
        // Every worker registers its histogram at startup; with
        // PerTrace batching each verdict records exactly one latency
        // observation on whichever worker produced it.
        let worker_stats = &report.metrics.rca_worker_latency_us;
        assert_eq!(worker_stats.len(), workers);
        assert!(worker_stats.iter().all(|(w, _)| *w < workers));
        let observations: u64 = worker_stats.iter().map(|(_, h)| h.count).sum();
        assert_eq!(observations, report.verdicts.len() as u64);
        runs.push(verdicts);
    }

    assert!(!runs[0].is_empty(), "chaos corpus produced no anomalies");
    assert_eq!(runs[0], runs[1], "2 workers changed the verdict set");
    assert_eq!(runs[0], runs[2], "4 workers changed the verdict set");

    // And all of them match the offline batch pipeline.
    let anomalous: Vec<&Trace> = traces
        .iter()
        .filter(|t| pipeline.detector().is_anomalous(t))
        .collect();
    let batch: BTreeMap<u64, Vec<String>> = anomalous
        .iter()
        .zip(pipeline.analyze(&anomalous, AnalyzeOptions::unclustered()))
        .map(|(t, r)| (t.trace_id(), r.services))
        .collect();
    assert_eq!(runs[0], batch);
}

/// Subtree pruning is a serving-layer no-op: two identically-fitted
/// pipelines that differ only in `PipelineConfig::prune` must emit the
/// exact same verdict set for the same span stream.
#[test]
fn pruning_is_transparent_to_serving_verdicts() {
    let app = presets::synthetic(12, 1);
    let train = CorpusBuilder::new(&app).seed(5).normal_traces(120).plain_traces();
    let fit = |prune: bool| {
        let config = PipelineConfig {
            train: TrainConfig { epochs: 12, batch_traces: 32, lr: 1e-2, seed: 0 },
            prune,
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    };

    let traces = chaos_traces(60);
    let spans: Vec<Span> = traces.iter().flat_map(|t| t.spans().to_vec()).collect();
    let mut runs: Vec<BTreeMap<u64, Vec<String>>> = Vec::new();
    for prune in [true, false] {
        let runtime = ServeRuntime::start(fit(prune), ServeConfig {
            num_shards: 2,
            idle_timeout_us: 1_000_000,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        let mut clock = 0;
        for batch in spans.chunks(250) {
            let report = runtime.submit_batch(batch.to_vec(), clock);
            assert_eq!(report.rejected + report.shed, 0, "no overload expected");
            clock += 1_000;
        }
        runtime.tick(clock + 2_000_000);
        let report = runtime.shutdown();
        runs.push(
            report
                .verdicts
                .iter()
                .map(|v| (v.trace_id, v.services.clone()))
                .collect(),
        );
    }

    assert!(!runs[0].is_empty(), "chaos corpus produced no anomalies");
    assert_eq!(runs[0], runs[1], "pruning changed the served verdict set");
}
