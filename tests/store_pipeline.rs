//! Integration of the storage engine with the simulator and the
//! feature pipeline: traces flow collector → store → query operators →
//! featurisation, as in the paper's §4 deployment.

use sleuth::store::{BaselineStats, Query, TraceStore};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::SpanKind;

fn loaded_store() -> (TraceStore, usize) {
    let app = presets::synthetic(16, 1);
    let corpus = CorpusBuilder::new(&app).seed(5).normal_traces(60);
    let mut store = TraceStore::new();
    for st in &corpus.traces {
        store.insert_trace(&st.trace);
    }
    (store, corpus.traces.len())
}

#[test]
fn simulated_traces_roundtrip_through_store() {
    let (store, n) = loaded_store();
    assert_eq!(store.trace_count(), n);
    let traces = store.all_traces();
    assert_eq!(traces.len(), n);
    // Every stored trace reassembles into a well-formed tree.
    for t in &traces {
        assert!(!t.is_empty());
        assert_eq!(t.max_depth(), t.iter().map(|(i, _)| t.depth(i)).max().unwrap());
    }
}

#[test]
fn store_side_operators_support_feature_engineering() {
    let (store, _) = loaded_store();
    // Baseline stats over every operation — the RCA's "normal state".
    let stats = BaselineStats::compute(&store);
    assert!(!stats.is_empty());
    for (_, op) in stats.iter() {
        assert!(op.median_us <= op.p95_us);
        assert!(op.p95_us <= op.p99_us);
        assert!((0.0..=1.0).contains(&op.error_rate));
    }
    // Exclusive-feature bulk computation.
    let feats = sleuth::store::ops::exclusive_features(&store);
    for (t, ex_d, ex_e) in &feats {
        assert_eq!(ex_d.len(), t.len());
        assert_eq!(ex_e.len(), t.len());
        for (i, _) in t.iter() {
            assert!(ex_d[i] <= t.span(i).duration_us());
        }
    }
}

#[test]
fn query_operators_compose_on_simulated_data() {
    let (store, _) = loaded_store();
    let servers = Query::new(&store).kind(SpanKind::Server).count();
    let clients = Query::new(&store).kind(SpanKind::Client).count();
    assert!(servers > 0 && clients > 0);
    // Group-by covers every (service, op, kind) combination seen.
    let groups = Query::new(&store).durations_by_operation();
    let total: usize = groups.values().map(Vec::len).sum();
    assert_eq!(total, store.span_count());
    // Time scans partition the corpus.
    let early = Query::new(&store).start_before_us(1_000).count();
    let late = Query::new(&store).start_after_us(1_000).count();
    assert_eq!(early + late, store.span_count());
}
