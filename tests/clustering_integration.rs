//! Integration of the trace distance metric and HDBSCAN with simulated
//! failure modes: traces from the same fault episode should cluster
//! together; different failure modes should separate.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::cluster::{geometric_median, hdbscan, DistanceMatrix, HdbscanParams, TraceSetEncoder};
use sleuth::synth::chaos::{Fault, FaultKind, FaultPlan, FaultTarget};
use sleuth::synth::presets;
use sleuth::synth::Simulator;
use sleuth::trace::Trace;

/// Simulate `n` traces under a plan.
fn traces_under(
    app: &sleuth::synth::App,
    plan: &FaultPlan,
    n: usize,
    seed: u64,
) -> Vec<Trace> {
    let sim = Simulator::new(app);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| sim.simulate(0, plan, seed * 10_000 + i as u64, &mut rng).trace)
        .collect()
}

fn stress_plan(app: &sleuth::synth::App, service: usize, kind: FaultKind, severity: f64) -> FaultPlan {
    FaultPlan {
        faults: (0..app.services[service].pods.len())
            .map(|pod| Fault {
                kind,
                target: FaultTarget::Pod { service, pod },
                severity,
            })
            .collect(),
    }
}

#[test]
fn failure_modes_form_separate_clusters() {
    let app = presets::synthetic(16, 1);
    // Two very different failure modes on two different services.
    let svc_a = app.flows[0].nodes[1].service;
    let svc_b = app.flows[0].nodes[2].service;
    let plan_a = stress_plan(&app, svc_a, FaultKind::CpuStress, 80.0);
    let plan_b = stress_plan(&app, svc_b, FaultKind::ErrorInjection, 1.0);

    let mut traces = traces_under(&app, &plan_a, 12, 1);
    traces.extend(traces_under(&app, &plan_b, 12, 2));

    let encoder = TraceSetEncoder::new(3);
    let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
    let dm = DistanceMatrix::builder().build_from(&sets);
    let clustering = hdbscan(
        &dm,
        &HdbscanParams {
            min_cluster_size: 5,
            min_samples: 3,
            cluster_selection_epsilon: 0.0,
            allow_single_cluster: false,
        },
    );
    assert!(
        clustering.n_clusters() >= 2,
        "two failure modes should separate, got {} clusters",
        clustering.n_clusters()
    );
    // The first failure mode's traces should dominate one cluster.
    let labels_a: Vec<isize> = clustering.labels[..12]
        .iter()
        .copied()
        .filter(|&l| l >= 0)
        .collect();
    let labels_b: Vec<isize> = clustering.labels[12..]
        .iter()
        .copied()
        .filter(|&l| l >= 0)
        .collect();
    if let (Some(&la), Some(&lb)) = (labels_a.first(), labels_b.first()) {
        assert!(labels_a.iter().all(|&l| l == la), "mode A split: {labels_a:?}");
        assert!(labels_b.iter().all(|&l| l == lb), "mode B split: {labels_b:?}");
        assert_ne!(la, lb, "modes A and B merged");
    }
}

#[test]
fn representative_is_a_member_of_its_cluster() {
    let app = presets::synthetic(16, 1);
    let svc = app.flows[0].nodes[1].service;
    let plan = stress_plan(&app, svc, FaultKind::CpuStress, 40.0);
    let traces = traces_under(&app, &plan, 15, 3);
    let encoder = TraceSetEncoder::new(3);
    let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
    let dm = DistanceMatrix::builder().build_from(&sets);
    let clustering = hdbscan(
        &dm,
        &HdbscanParams {
            min_cluster_size: 4,
            min_samples: 2,
            cluster_selection_epsilon: 0.0,
            allow_single_cluster: true,
        },
    );
    for c in 0..clustering.n_clusters() as isize {
        let members = clustering.members(c);
        let rep = geometric_median(&dm, &members).expect("non-empty cluster");
        assert!(members.contains(&rep));
        // The representative minimises total distance within the cluster.
        let total = |i: usize| -> f64 { members.iter().map(|&j| dm.get(i, j)).sum() };
        for &m in &members {
            assert!(total(rep) <= total(m) + 1e-9);
        }
    }
}

#[test]
fn distance_separates_latency_regimes() {
    let app = presets::synthetic(16, 1);
    let svc = app.flows[0].nodes[1].service;
    let healthy = traces_under(&app, &FaultPlan::healthy(), 8, 4);
    let slow = traces_under(&app, &stress_plan(&app, svc, FaultKind::CpuStress, 80.0), 8, 5);

    let encoder = TraceSetEncoder::new(3);
    let h_sets: Vec<_> = healthy.iter().map(|t| encoder.encode(t)).collect();
    let s_sets: Vec<_> = slow.iter().map(|t| encoder.encode(t)).collect();

    // Mean intra-healthy distance should be below healthy↔slow distance.
    let mut intra = 0.0;
    let mut n_intra = 0usize;
    for i in 0..h_sets.len() {
        for j in (i + 1)..h_sets.len() {
            intra += sleuth::cluster::distance::trace_distance(&h_sets[i], &h_sets[j]);
            n_intra += 1;
        }
    }
    let mut inter = 0.0;
    let mut n_inter = 0usize;
    for h in &h_sets {
        for s in &s_sets {
            inter += sleuth::cluster::distance::trace_distance(h, s);
            n_inter += 1;
        }
    }
    let intra = intra / n_intra as f64;
    let inter = inter / n_inter as f64;
    assert!(
        inter > intra,
        "faulted traces should be farther: intra {intra:.3} vs inter {inter:.3}"
    );
}
