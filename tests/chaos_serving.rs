//! Chaos tests for the self-healing serving runtime: injected worker
//! panics, malformed span batches, queue stalls, and clock skew must
//! all be absorbed — zero escaped panics, every healthy trace
//! verdicted (full or degraded), every broken one quarantined, and
//! span conservation intact.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

use sleuth::chaos::{corrupt_batch, Corruption, FaultPlan, SeededInjector};
use sleuth::core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{
    shard_of, FaultInjector, QuarantineReason, RefreshConfig, ResilienceConfig, ServeConfig,
    ServeRuntime,
};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::{Span, Trace};

/// One quick-fitted pipeline shared by every test in this file.
fn pipeline() -> Arc<SleuthPipeline> {
    static PIPELINE: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let app = presets::synthetic(12, 1);
        let train = CorpusBuilder::new(&app).seed(5).normal_traces(120).plain_traces();
        let config = PipelineConfig {
            train: TrainConfig { epochs: 12, batch_traces: 32, lr: 1e-2, seed: 0 },
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    }))
}

fn chaos_traces(n: usize) -> Vec<Trace> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(n, 8)
        .traces
        .into_iter()
        .map(|t| t.trace)
        .collect()
}

/// Rebadge one trace's spans under a fresh trace id.
fn rebadged(spans: &[Span], trace_id: u64) -> Vec<Span> {
    spans
        .iter()
        .cloned()
        .map(|mut s| {
            s.trace_id = trace_id;
            s
        })
        .collect()
}

/// The acceptance storm from the failure model: every RCA worker
/// killed at least once, a budgeted stream of additional RCA panics,
/// refresher panics, shard stalls, clock skew, and >5% of batches
/// structurally corrupted — the runtime must absorb all of it with
/// zero escaped panics, verdict every healthy anomalous trace
/// (degraded or full), quarantine every corrupted one, and keep the
/// span accounting conservative.
#[test]
fn storm_of_panics_and_malformed_batches_is_absorbed() {
    let pipeline = pipeline();
    let traces = chaos_traces(80);
    let workers = 2usize;

    // Corrupt every 8th trace (12.5% of batches) with a corruption
    // that guarantees assembly failure.
    let kinds = [Corruption::Cycle, Corruption::DanglingParent];
    let mut corrupted_ids: BTreeSet<u64> = BTreeSet::new();
    let mut batches: Vec<Vec<Span>> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let mut spans = t.spans().to_vec();
        if i % 8 == 0 {
            let kind = kinds[(i / 8) % kinds.len()];
            assert!(kind.malforms_trace());
            corrupt_batch(&mut spans, kind);
            corrupted_ids.insert(t.trace_id());
        }
        batches.push(spans);
    }

    let plan = FaultPlan {
        seed: 1234,
        kill_each_rca_worker_once: true,
        rca_panic_rate: 0.25,
        rca_panic_budget: 12,
        rca_delay_rate: 0.1,
        rca_delay_us: 200,
        rca_delay_budget: 6,
        shard_stall_rate: 0.1,
        shard_stall_us: 200,
        shard_stall_budget: 6,
        refresh_panic_rate: 1.0,
        refresh_panic_budget: 3,
        clock_skew_us: 200,
        ..FaultPlan::default()
    };
    let injector = Arc::new(SeededInjector::new(plan));
    let runtime = ServeRuntime::start_with_injector(
        Arc::clone(&pipeline),
        ServeConfig {
            num_shards: 4,
            rca_workers: workers,
            idle_timeout_us: 1_000_000,
            // Fold traces into the refresher (so refresh panics fire)
            // but never publish: verdicts must stay comparable to the
            // fault-free batch pipeline.
            refresh: Some(RefreshConfig {
                interval_traces: 1_000_000,
                ..RefreshConfig::default()
            }),
            ..ServeConfig::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    )
    .expect("valid serve config");

    let mut clock = 0;
    for batch in batches {
        let report = runtime.submit_batch(batch, clock);
        assert_eq!(report.rejected + report.shed, 0, "no overload expected");
        clock += 1_000;
    }
    runtime.tick(clock + 2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    // Supervision coverage: every RCA worker panicked (kill-once) and
    // restarted at least once, and the counts are exposed.
    for w in 0..workers {
        let panics = m
            .worker_panics
            .iter()
            .find(|(stage, id, _)| stage == "rca" && *id == w)
            .map_or(0, |&(_, _, n)| n);
        assert!(panics >= 1, "rca worker {w} was never killed");
        let restarts = m
            .worker_restarts
            .iter()
            .find(|(stage, id, _)| stage == "rca" && *id == w)
            .map_or(0, |&(_, _, n)| n);
        assert!(restarts >= 1, "rca worker {w} never restarted");
    }
    assert!(injector.injected_rca_panics() >= workers as u64);
    assert!(injector.is_silent(), "fault budgets should be spent");

    // The refresher was killed (and restarted) exactly budget times,
    // skipping the poisoned folds.
    let refresh_panics = m
        .worker_panics
        .iter()
        .find(|(stage, _, _)| stage == "refresh")
        .map_or(0, |&(_, _, n)| n);
    assert_eq!(refresh_panics, injector.injected_refresh_panics());
    assert_eq!(refresh_panics, 3);

    // Every corrupted batch quarantined with the assembly error;
    // nothing else poisoned (attempt-0 faults always succeed on retry).
    assert_eq!(m.traces_malformed, corrupted_ids.len() as u64);
    assert_eq!(m.poison_traces, report.quarantined.len() as u64);
    let assembly_ids: BTreeSet<u64> = report
        .quarantined
        .iter()
        .filter(|q| matches!(q.reason, QuarantineReason::Assembly(_)))
        .filter_map(|q| q.trace_id)
        .collect();
    assert_eq!(assembly_ids, corrupted_ids);
    let rca_quarantined = report
        .quarantined
        .iter()
        .filter(|q| matches!(q.reason, QuarantineReason::RcaPanic { .. }))
        .count();
    assert_eq!(rca_quarantined, 0, "a retried attempt-0 fault was quarantined");

    // Every healthy anomalous trace got a verdict — full or degraded —
    // and full verdicts match the batch pipeline exactly.
    let healthy_anomalous: BTreeMap<u64, Vec<String>> = {
        let survivors: Vec<&Trace> = traces
            .iter()
            .filter(|t| !corrupted_ids.contains(&t.trace_id()))
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        survivors
            .iter()
            .zip(pipeline.analyze(&survivors, AnalyzeOptions::unclustered()))
            .map(|(t, r)| (t.trace_id(), r.services))
            .collect()
    };
    assert!(!healthy_anomalous.is_empty(), "corpus produced no anomalies");
    let online_ids: BTreeSet<u64> = report.verdicts.iter().map(|v| v.trace_id).collect();
    assert_eq!(online_ids.len(), report.verdicts.len(), "duplicate verdicts");
    let expected_ids: BTreeSet<u64> = healthy_anomalous.keys().copied().collect();
    assert_eq!(online_ids, expected_ids);
    for v in &report.verdicts {
        if !v.degraded {
            assert_eq!(&v.services, &healthy_anomalous[&v.trace_id]);
        } else {
            assert!(v.cluster.is_none(), "degraded verdicts skip clustering");
        }
    }
    assert_eq!(m.verdicts_emitted, report.verdicts.len() as u64);
    let degraded_count = report.verdicts.iter().filter(|v| v.degraded).count();
    assert_eq!(m.verdicts_degraded, degraded_count as u64);

    // Span conservation, extended with the quarantine term.
    assert_eq!(
        m.spans_submitted,
        m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined
    );
    assert_eq!(m.spans_quarantined, 0, "no shard panics were planned");
}

/// Satellite: malformed batches — cycles, dangling parents, mixed
/// trace ids — flow through `submit_batch` without panicking anything;
/// each broken fragment is quarantined with its assembly error while
/// healthy traffic is verdicted normally.
#[test]
fn malformed_batches_quarantine_healthy_traffic_flows() {
    let pipeline = pipeline();
    let traces = chaos_traces(12);
    let kinds = [
        Some(Corruption::Cycle),
        Some(Corruption::DanglingParent),
        Some(Corruption::MixedTraceIds),
        None,
    ];

    // Controlled, well-spaced trace ids so a MixedTraceIds fragment
    // (id + 1) can never collide with another trace.
    let mut batches: Vec<Vec<Span>> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let mut spans = rebadged(t.spans(), 1_000 * (i as u64 + 1));
        if let Some(kind) = kinds[i % kinds.len()] {
            corrupt_batch(&mut spans, kind);
        }
        batches.push(spans);
    }

    // Ground truth per batch, mirroring the per-trace collector: group
    // by trace id; groups that assemble are analyzed, the rest must be
    // quarantined.
    let mut expected_malformed = 0u64;
    let mut assembled: Vec<Trace> = Vec::new();
    for batch in &batches {
        let mut groups: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
        for span in batch {
            groups.entry(span.trace_id).or_default().push(span.clone());
        }
        for (_, spans) in groups {
            match Trace::assemble(spans) {
                Ok(trace) => assembled.push(trace),
                Err(_) => expected_malformed += 1,
            }
        }
    }
    assert!(expected_malformed >= 4, "corruptions produced too few broken fragments");
    let anomalous: Vec<&Trace> = assembled
        .iter()
        .filter(|t| pipeline.detector().is_anomalous(t))
        .collect();
    let expected_verdicts: BTreeMap<u64, Vec<String>> = anomalous
        .iter()
        .zip(pipeline.analyze(&anomalous, AnalyzeOptions::unclustered()))
        .map(|(t, r)| (t.trace_id(), r.services))
        .collect();

    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
        num_shards: 3,
        idle_timeout_us: 1_000_000,
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    let mut clock = 0;
    for batch in batches {
        let report = runtime.submit_batch(batch, clock);
        assert_eq!(report.rejected + report.shed + report.invalid, 0);
        clock += 1_000;
    }
    runtime.tick(clock + 2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    assert!(m.worker_panics.is_empty(), "malformed input crashed a worker");
    assert_eq!(m.traces_malformed, expected_malformed);
    assert_eq!(report.quarantined.len() as u64, expected_malformed);
    for q in &report.quarantined {
        assert!(
            matches!(q.reason, QuarantineReason::Assembly(_)),
            "unexpected quarantine reason {:?}",
            q.reason
        );
        assert!(q.trace_id.is_some() && q.span_count > 0);
    }
    assert!(m
        .quarantined_by_reason
        .iter()
        .any(|(reason, n)| reason == "assembly" && *n == expected_malformed));

    let online: BTreeMap<u64, Vec<String>> = report
        .verdicts
        .iter()
        .map(|v| (v.trace_id, v.services.clone()))
        .collect();
    assert_eq!(online, expected_verdicts);
    assert!(report.verdicts.iter().all(|v| !v.degraded));

    // Malformed spans are stored (they arrived before assembly), so
    // the original conservation identity still balances.
    assert_eq!(
        m.spans_submitted,
        m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
    );
}

/// Satellite: inverted-interval spans are refused at submission,
/// reported per batch, and labelled in the metrics — the rest of the
/// batch is unaffected.
#[test]
fn inverted_intervals_are_rejected_and_counted() {
    let pipeline = pipeline();
    let trace = chaos_traces(8)
        .into_iter()
        .find(|t| t.len() >= 3)
        .expect("corpus has a multi-span trace");
    let mut spans = trace.spans().to_vec();
    let healthy = spans.len() - 1;
    corrupt_batch(&mut spans, Corruption::InvertedInterval);

    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig::default())
        .expect("valid serve config");
    let report = runtime.submit_batch(spans, 0);
    assert_eq!(report.invalid, 1);
    assert_eq!(report.enqueued, healthy);
    assert_eq!(report.rejected + report.shed, 0);

    let final_report = runtime.shutdown();
    let m = &final_report.metrics;
    assert_eq!(m.spans_rejected, 1);
    assert!(m
        .spans_rejected_by_reason
        .iter()
        .any(|(reason, n)| reason == "inverted_interval" && *n == 1));
    let text = m.render_text();
    assert!(text.contains("sleuth_serve_spans_rejected_total{reason=\"inverted_interval\"} 1"));
    assert_eq!(m.spans_stored, healthy as u64);
    assert_eq!(
        m.spans_submitted,
        m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
    );
}

/// With retries disabled, a run of injected RCA panics quarantines the
/// poison traces, trips the circuit breaker, and serves the backlog
/// degraded until the cool-down probe closes it again.
#[test]
fn poison_traces_trip_the_breaker_and_degrade() {
    let pipeline = pipeline();
    let traces = chaos_traces(40);
    let anomalous = traces
        .iter()
        .find(|t| pipeline.detector().is_anomalous(t))
        .expect("chaos corpus contains an anomaly");

    let total = 30u64;
    let plan = FaultPlan {
        seed: 7,
        rca_panic_rate: 1.0,
        rca_panic_budget: 5,
        ..FaultPlan::default()
    };
    let injector = Arc::new(SeededInjector::new(plan));
    let runtime = ServeRuntime::start_with_injector(
        Arc::clone(&pipeline),
        ServeConfig {
            num_shards: 4,
            rca_workers: 1,
            idle_timeout_us: 1_000_000,
            resilience: ResilienceConfig {
                max_rca_attempts: 1, // first panic quarantines
                breaker_threshold: 3,
                breaker_cooldown: 4,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    )
    .expect("valid serve config");

    for i in 0..total {
        let report = runtime.submit_batch(rebadged(anomalous.spans(), 50_000 + i), 0);
        assert_eq!(report.rejected + report.shed, 0);
    }
    runtime.tick(2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    // The 5 budgeted panics each quarantine their trace (no retries).
    assert_eq!(injector.injected_rca_panics(), 5);
    let poisoned: Vec<_> = report
        .quarantined
        .iter()
        .filter(|q| matches!(q.reason, QuarantineReason::RcaPanic { worker: 0, attempts: 1 }))
        .collect();
    assert_eq!(poisoned.len(), 5);
    assert!(poisoned.iter().all(|q| q.trace.is_some()), "poison trace handle kept");
    assert_eq!(m.poison_traces, 5);

    // Three consecutive crashes trip the breaker; the post-storm
    // backlog is served degraded until the half-open probe succeeds.
    assert!(m.breaker_trips >= 1);
    assert!(m.verdicts_degraded >= 1);
    assert!(m
        .degraded_by_reason
        .iter()
        .any(|(reason, n)| reason == "breaker_open" && *n >= 1));
    assert_eq!(m.verdicts_emitted, total - 5);
    assert_eq!(report.verdicts.len() as u64, total - 5);
    let degraded: Vec<_> = report.verdicts.iter().filter(|v| v.degraded).collect();
    assert_eq!(degraded.len() as u64, m.verdicts_degraded);
    assert!(degraded.iter().all(|v| v.cluster.is_none()));
    // Every submitted trace is accounted for: verdicted or poisoned.
    let mut seen: BTreeSet<u64> = report.verdicts.iter().map(|v| v.trace_id).collect();
    seen.extend(poisoned.iter().filter_map(|q| q.trace_id));
    let expected: BTreeSet<u64> = (0..total).map(|i| 50_000 + i).collect();
    assert_eq!(seen, expected);
}

/// An aggressive RCA deadline latches the degradation ladder: after
/// the first over-deadline localisation, verdicts shed to the cheap
/// path (with periodic full-path probes) — but every trace is still
/// verdicted.
#[test]
fn rca_deadline_sheds_to_degraded_verdicts() {
    let pipeline = pipeline();
    let traces = chaos_traces(40);
    let anomalous = traces
        .iter()
        .find(|t| pipeline.detector().is_anomalous(t))
        .expect("chaos corpus contains an anomaly");

    let total = 20u64;
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
        num_shards: 2,
        rca_workers: 1,
        idle_timeout_us: 1_000_000,
        rca_deadline_us: Some(1), // full localisation always overruns
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    for i in 0..total {
        let report = runtime.submit_batch(rebadged(anomalous.spans(), 60_000 + i), 0);
        assert_eq!(report.rejected + report.shed, 0);
    }
    runtime.tick(2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    assert_eq!(m.verdicts_emitted, total);
    assert!(m.verdicts_degraded >= 1, "deadline never shed");
    assert!(
        m.verdicts_degraded < total,
        "probes should keep trying the full path"
    );
    assert!(m
        .degraded_by_reason
        .iter()
        .any(|(reason, n)| reason == "deadline" && *n >= 1));
    let ids: BTreeSet<u64> = report.verdicts.iter().map(|v| v.trace_id).collect();
    assert_eq!(ids.len() as u64, total, "every trace verdicted exactly once");
}

/// A shard worker killed mid-batch quarantines the in-flight spans
/// (they never reached the collector), restarts, and keeps serving —
/// with the extended conservation identity balancing the books.
#[test]
fn shard_panics_quarantine_in_flight_batches() {
    let pipeline = pipeline();
    let traces = chaos_traces(40);
    let anomalous = traces
        .iter()
        .find(|t| pipeline.detector().is_anomalous(t))
        .expect("chaos corpus contains an anomaly");
    let span_count = anomalous.len() as u64;

    let total = 20u64;
    let plan = FaultPlan {
        seed: 21,
        shard_panic_rate: 1.0,
        shard_panic_budget: 2,
        ..FaultPlan::default()
    };
    let injector = Arc::new(SeededInjector::new(plan));
    let runtime = ServeRuntime::start_with_injector(
        Arc::clone(&pipeline),
        ServeConfig {
            num_shards: 2,
            idle_timeout_us: 1_000_000,
            ..ServeConfig::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    )
    .expect("valid serve config");
    for i in 0..total {
        let report = runtime.submit_batch(rebadged(anomalous.spans(), 70_000 + i), 0);
        assert_eq!(report.rejected + report.shed, 0);
    }
    runtime.tick(2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    assert_eq!(injector.injected_shard_panics(), 2);
    let killed: Vec<_> = report
        .quarantined
        .iter()
        .filter(|q| matches!(q.reason, QuarantineReason::ShardPanic { .. }))
        .collect();
    assert_eq!(killed.len(), 2);
    assert_eq!(m.spans_quarantined, 2 * span_count);
    let shard_panics: u64 = m
        .worker_panics
        .iter()
        .filter(|(stage, _, _)| stage == "shard")
        .map(|&(_, _, n)| n)
        .sum();
    assert_eq!(shard_panics, 2);
    let shard_restarts: u64 = m
        .worker_restarts
        .iter()
        .filter(|(stage, _, _)| stage == "shard")
        .map(|&(_, _, n)| n)
        .sum();
    assert_eq!(shard_restarts, 2);

    // The 18 surviving traces complete and are verdicted.
    assert_eq!(m.traces_completed, total - 2);
    let lost: BTreeSet<u64> = killed.iter().filter_map(|q| q.trace_id).collect();
    let verdicted: BTreeSet<u64> = report.verdicts.iter().map(|v| v.trace_id).collect();
    let expected: BTreeSet<u64> = (0..total)
        .map(|i| 70_000 + i)
        .filter(|id| !lost.contains(id))
        .collect();
    assert_eq!(verdicted, expected);

    assert_eq!(
        m.spans_submitted,
        m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined
    );
}

/// A shard-panic storm that overflows a tiny quarantine buffer: the
/// store keeps only the newest `quarantine_capacity` entries (oldest
/// dropped and counted in `quarantine_dropped`), while the monotonic
/// `poison_traces` and `spans_quarantined` counters keep *exact* books
/// — the conservation identity must balance even though most
/// quarantined entries were evicted from the buffer itself.
#[test]
fn quarantine_storm_wraps_buffer_with_exact_accounting() {
    let pipeline = pipeline();
    let traces = chaos_traces(4);
    let spans = traces[0].spans();
    let span_count = spans.len() as u64;

    let total = 32u64;
    let panics = 12u64;
    let capacity = 4usize;
    let plan = FaultPlan {
        seed: 33,
        shard_panic_rate: 1.0,
        shard_panic_budget: panics,
        ..FaultPlan::default()
    };
    let injector = Arc::new(SeededInjector::new(plan));
    let runtime = ServeRuntime::start_with_injector(
        Arc::clone(&pipeline),
        ServeConfig {
            num_shards: 2,
            idle_timeout_us: 1_000_000,
            resilience: ResilienceConfig {
                quarantine_capacity: capacity,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    )
    .expect("valid serve config");
    // All batches before any tick, so every budgeted panic lands on a
    // Batch message and strands exactly one single-trace batch.
    for i in 0..total {
        let report = runtime.submit_batch(rebadged(spans, 80_000 + i), 0);
        assert_eq!(report.rejected + report.shed, 0);
    }
    runtime.tick(2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    assert_eq!(injector.injected_shard_panics(), panics);
    assert_eq!(m.poison_traces, panics, "every panic quarantined exactly once");
    // The buffer wrapped: only the newest `capacity` entries survive.
    assert_eq!(report.quarantined.len(), capacity);
    assert_eq!(m.quarantine_dropped, panics - capacity as u64);
    // The span counter is monotonic and unaffected by buffer wrap.
    assert_eq!(m.spans_quarantined, panics * span_count);
    assert_eq!(
        m.spans_submitted,
        m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined,
        "conservation must stay exact when the quarantine buffer wraps"
    );

    // Surviving entries still carry full provenance: the origin shard
    // matches both the panic reason and the trace's routing.
    for q in &report.quarantined {
        let origin = q.origin_shard.expect("shard panic entries carry origin_shard");
        assert!(
            matches!(q.reason, QuarantineReason::ShardPanic { shard } if shard == origin),
            "reason {:?} disagrees with origin_shard {origin}",
            q.reason
        );
        let id = q.trace_id.expect("single-trace batches have a trace id");
        assert_eq!(origin, shard_of(id, 2), "origin_shard disagrees with routing");
        assert_eq!(q.span_count as u64, span_count);
    }

    // Every non-stranded trace still completed and was verdicted or
    // stored; nothing leaked besides the labelled quarantines.
    assert_eq!(m.traces_completed, total - panics);
}

/// `poll_quarantined` under an active storm: each poll returns at most
/// `quarantine_capacity` entries (the store is hard-bounded no matter
/// how fast panics arrive), drained entries never reappear, and
/// provenance survives the mid-storm drain — entries polled live plus
/// entries left at shutdown account for every non-dropped quarantine.
#[test]
fn poll_quarantined_respects_bound_and_preserves_origin_during_storm() {
    let pipeline = pipeline();
    let traces = chaos_traces(4);
    let spans = traces[0].spans();

    let total = 32u64;
    let panics = 12u64;
    let capacity = 4usize;
    let plan = FaultPlan {
        seed: 34,
        shard_panic_rate: 1.0,
        shard_panic_budget: panics,
        ..FaultPlan::default()
    };
    let injector = Arc::new(SeededInjector::new(plan));
    let runtime = ServeRuntime::start_with_injector(
        Arc::clone(&pipeline),
        ServeConfig {
            num_shards: 2,
            idle_timeout_us: 1_000_000,
            resilience: ResilienceConfig {
                quarantine_capacity: capacity,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    )
    .expect("valid serve config");

    let mut polled: Vec<_> = Vec::new();
    for i in 0..total {
        runtime.submit_batch(rebadged(spans, 90_000 + i), 0);
        let batch = runtime.poll_quarantined();
        assert!(
            batch.len() <= capacity,
            "poll returned {} entries from a store bounded at {capacity}",
            batch.len()
        );
        polled.extend(batch);
    }
    runtime.tick(2_000_000);
    let report = runtime.shutdown();
    let m = &report.metrics;

    assert!(report.quarantined.len() <= capacity);
    let seen: Vec<_> = polled.iter().chain(&report.quarantined).collect();
    // Drains are destructive: no entry is returned twice.
    let ids: BTreeSet<u64> = seen.iter().filter_map(|q| q.trace_id).collect();
    assert_eq!(ids.len(), seen.len(), "a quarantined entry was drained twice");
    // Live polling frees buffer space, so fewer (or zero) entries are
    // dropped than in the unpolled storm — but the books still close:
    // everything quarantined was either drained by someone or dropped.
    assert_eq!(seen.len() as u64 + m.quarantine_dropped, panics);
    assert_eq!(m.poison_traces, panics);
    for q in seen {
        let origin = q.origin_shard.expect("shard panic entries carry origin_shard");
        assert!(matches!(q.reason, QuarantineReason::ShardPanic { shard } if shard == origin));
        let id = q.trace_id.expect("single-trace batches have a trace id");
        assert_eq!(origin, shard_of(id, 2), "origin_shard survives a mid-storm drain");
    }
    assert_eq!(
        m.spans_submitted,
        m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined
    );
}
