//! Cross-crate property-based tests: invariants that must hold for any
//! generated application, any simulated trace, and any format
//! round-trip.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::chaos::{FaultPlan as RuntimeFaultPlan, SeededInjector};
use sleuth::cluster::{hdbscan, DistanceMatrix, HdbscanParams, TraceSetEncoder};
use sleuth::core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{shard_of, FaultInjector, ResilienceConfig, ServeConfig, ServeRuntime};
use sleuth::synth::chaos::{ChaosEngine, FaultPlan};
use sleuth::synth::generator::{generate_app, GeneratorConfig};
use sleuth::synth::workload::CorpusBuilder;
use sleuth::synth::Simulator;
use sleuth::trace::{exclusive, formats, SpanKind, Trace};

/// Simulate one trace of a generated app, under an arbitrary fault plan.
fn simulate(n_rpcs: usize, app_seed: u64, sim_seed: u64, faulty: bool) -> Trace {
    let app = generate_app(&GeneratorConfig::synthetic(n_rpcs), app_seed);
    let sim = Simulator::new(&app);
    let mut rng = ChaCha8Rng::seed_from_u64(sim_seed);
    let plan = if faulty {
        ChaosEngine::default().sample_nonempty_plan(&app, &mut rng)
    } else {
        FaultPlan::healthy()
    };
    sim.simulate(0, &plan, sim_seed, &mut rng).trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every simulated trace is a well-formed tree with sane physics:
    /// parents precede children, synchronous children nest inside their
    /// parents, exclusive durations never exceed full durations.
    #[test]
    fn prop_simulated_traces_are_physical(
        app_seed in 0u64..200,
        sim_seed in 0u64..1000,
        faulty in any::<bool>(),
    ) {
        let trace = simulate(16, app_seed, sim_seed, faulty);
        prop_assert!(!trace.is_empty());
        let ex = exclusive::exclusive_durations(&trace);
        for (i, span) in trace.iter() {
            prop_assert!(span.end_us >= span.start_us);
            prop_assert!(ex[i] <= span.duration_us());
            if let Some(p) = trace.parent(i) {
                prop_assert!(p < i, "topological order violated");
                let ps = trace.span(p);
                if span.kind != SpanKind::Consumer {
                    prop_assert!(span.start_us >= ps.start_us);
                    prop_assert!(span.end_us <= ps.end_us,
                        "sync span escapes parent: {} [{},{}] vs parent [{},{}]",
                        span.name, span.start_us, span.end_us, ps.start_us, ps.end_us);
                }
            }
        }
        // Exclusive errors imply errors.
        let ee = exclusive::exclusive_errors(&trace);
        for (i, _) in trace.iter() {
            if ee[i] {
                prop_assert!(trace.span(i).is_error());
            }
        }
    }

    /// All three interchange formats round-trip simulated spans exactly.
    #[test]
    fn prop_format_roundtrips(app_seed in 0u64..100, sim_seed in 0u64..500) {
        let trace = simulate(16, app_seed, sim_seed, true);
        let spans = trace.spans().to_vec();
        prop_assert_eq!(&formats::from_otel(&formats::to_otel(&spans)).unwrap(), &spans);
        prop_assert_eq!(&formats::from_zipkin(&formats::to_zipkin(&spans)).unwrap(), &spans);
        prop_assert_eq!(&formats::from_jaeger(&formats::to_jaeger(&spans)).unwrap(), &spans);
    }

    /// The trace distance is a bounded semi-metric on simulated traces,
    /// and identical traces are at distance zero.
    #[test]
    fn prop_trace_distance_semimetric(app_seed in 0u64..50, s1 in 0u64..200, s2 in 0u64..200) {
        let a = simulate(16, app_seed, s1, false);
        let b = simulate(16, app_seed, s2, true);
        let enc = TraceSetEncoder::new(3);
        let (sa, sb) = (enc.encode(&a), enc.encode(&b));
        let d_ab = sleuth::cluster::distance::trace_distance(&sa, &sb);
        let d_ba = sleuth::cluster::distance::trace_distance(&sb, &sa);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert_eq!(sleuth::cluster::distance::trace_distance(&sa, &sa), 0.0);
    }

    /// HDBSCAN labels are always valid: contiguous cluster ids from 0,
    /// noise as -1, every selected cluster at least min_cluster_size.
    #[test]
    fn prop_hdbscan_labels_valid(
        app_seed in 0u64..30,
        n in 8usize..24,
        mcs in 3usize..6,
    ) {
        let traces: Vec<Trace> = (0..n).map(|i| simulate(16, app_seed, i as u64, i % 3 == 0)).collect();
        let enc = TraceSetEncoder::new(3);
        let sets: Vec<_> = traces.iter().map(|t| enc.encode(t)).collect();
        let dm = DistanceMatrix::from_sets(&sets);
        let c = hdbscan(&dm, &HdbscanParams {
            min_cluster_size: mcs,
            min_samples: 2,
            cluster_selection_epsilon: 0.0,
            allow_single_cluster: true,
        });
        prop_assert_eq!(c.labels.len(), n);
        let k = c.n_clusters() as isize;
        for &l in &c.labels {
            prop_assert!(l == -1 || (0..k).contains(&l), "label {l} out of range");
        }
        for cl in 0..k {
            let size = c.members(cl).len();
            prop_assert!(size >= mcs, "cluster {cl} has only {size} members (mcs {mcs})");
        }
    }

    /// The GNN counterfactual with no intervention reproduces the
    /// observed trace for any simulated input, even with an untrained
    /// model (abduction invariant).
    #[test]
    fn prop_counterfactual_reproduces_observation(app_seed in 0u64..50, sim_seed in 0u64..200) {
        let trace = simulate(16, app_seed, sim_seed, true);
        let mut featurizer = sleuth::gnn::Featurizer::new(8);
        let enc = featurizer.encode(&trace);
        let model = sleuth::gnn::SleuthModel::new(&sleuth::gnn::ModelConfig::default(), app_seed);
        let pred = model.predict_counterfactual(&enc, &[]);
        for i in 0..enc.len() {
            prop_assert!((pred.d_scaled[i] - enc.d_scaled[i]).abs() < 1e-3,
                "span {i}: {} vs {}", pred.d_scaled[i], enc.d_scaled[i]);
            prop_assert!((pred.e_prob[i] - enc.e[i]).abs() < 1e-4);
        }
    }

    /// Shard routing is a pure, stable function: the same trace id
    /// always lands on the same in-range shard, regardless of when or
    /// in what order batches arrive.
    #[test]
    fn prop_shard_routing_deterministic(
        ids in proptest::collection::vec(0u64..=u64::MAX, 1..64),
        num_shards in 1usize..12,
    ) {
        for &id in &ids {
            let s = shard_of(id, num_shards);
            prop_assert!(s < num_shards);
            prop_assert_eq!(s, shard_of(id, num_shards), "routing not stable");
            prop_assert_eq!(shard_of(id, 1), 0);
        }
        // Order-independence: routing a reversed stream is identical.
        let forward: Vec<usize> = ids.iter().map(|&i| shard_of(i, num_shards)).collect();
        let mut backward: Vec<usize> =
            ids.iter().rev().map(|&i| shard_of(i, num_shards)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }
}

/// One quick-fitted pipeline shared by the serving properties below.
fn serve_pipeline() -> Arc<SleuthPipeline> {
    static PIPELINE: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let app = sleuth::synth::presets::synthetic(12, 1);
        let train = CorpusBuilder::new(&app).seed(5).normal_traces(100).plain_traces();
        let config = PipelineConfig {
            train: TrainConfig { epochs: 10, batch_traces: 32, lr: 1e-2, seed: 0 },
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shutting down immediately after ingest — no ticks, no idle
    /// windows elapsed — still drains every ingested trace exactly
    /// once: the flush path loses nothing.
    #[test]
    fn prop_drain_after_shutdown_loses_no_traces(
        app_seed in 0u64..40,
        sim_seeds in proptest::collection::vec(1u64..500, 2..6),
        num_shards in 1usize..6,
    ) {
        let seeds: BTreeSet<u64> = sim_seeds.into_iter().collect();
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| simulate(12, app_seed, s, s % 2 == 0))
            .collect();
        let pipeline = serve_pipeline();
        let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
            num_shards,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        for t in &traces {
            let report = runtime.submit_batch(t.spans().to_vec(), 0);
            prop_assert_eq!(report.rejected + report.shed, 0);
        }
        let report = runtime.shutdown();
        let m = &report.metrics;
        prop_assert_eq!(report.store.trace_count(), traces.len());
        prop_assert_eq!(m.traces_completed, traces.len() as u64);
        prop_assert_eq!(m.traces_malformed, 0);
        prop_assert_eq!(
            m.spans_submitted,
            m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
        );
        // Verdicts match the batch pipeline over the same traces.
        let anomalous: Vec<&Trace> = traces
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        prop_assert_eq!(report.verdicts.len(), anomalous.len());
        let mut online: Vec<u64> = report.verdicts.iter().map(|v| v.trace_id).collect();
        online.sort_unstable();
        let mut expected: Vec<u64> = anomalous.iter().map(|t| t.trace_id()).collect();
        expected.sort_unstable();
        prop_assert_eq!(online, expected);
    }

    /// Verdict model versions are non-decreasing in emission order and
    /// every verdict is tagged, no matter when hot-swaps land relative
    /// to ingest. Publishing the same pipeline leaves verdict content
    /// untouched — only the version tag moves.
    #[test]
    fn prop_verdict_versions_monotonic_across_swaps(
        app_seed in 0u64..40,
        sim_seeds in proptest::collection::vec(1u64..500, 3..8),
        publish_before in 0usize..8,
    ) {
        let seeds: BTreeSet<u64> = sim_seeds.into_iter().collect();
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| simulate(12, app_seed, s, true))
            .collect();
        let pipeline = serve_pipeline();
        let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
            num_shards: 2,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        for (i, t) in traces.iter().enumerate() {
            if i == publish_before {
                let v = runtime.publish(Arc::clone(&pipeline));
                prop_assert_eq!(v, sleuth::serve::ModelVersion(2));
            }
            let report = runtime.submit_batch(t.spans().to_vec(), 0);
            prop_assert_eq!(report.rejected + report.shed, 0);
        }
        let report = runtime.shutdown();
        let m = &report.metrics;
        let current = if publish_before < traces.len() { 2 } else { 1 };
        for pair in report.verdicts.windows(2) {
            prop_assert!(pair[0].model_version <= pair[1].model_version);
        }
        for v in &report.verdicts {
            prop_assert!(v.model_version.0 >= 1 && v.model_version.0 <= current);
        }
        let tagged: u64 = m.verdicts_by_version.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(tagged, m.verdicts_emitted);
        prop_assert_eq!(m.verdicts_emitted, report.verdicts.len() as u64);
        // Same pipeline on both sides of the swap: content matches the
        // batch pipeline exactly.
        let anomalous: Vec<&Trace> = traces
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        prop_assert_eq!(report.verdicts.len(), anomalous.len());
    }

    /// Fault transparency: under any seeded runtime fault plan whose
    /// faults eventually fall silent (budgeted panics and delays, all
    /// injected at attempt 0 so the supervised retry succeeds), the
    /// surviving traces receive exactly the verdicts of a fault-free
    /// run — nothing quarantined, nothing degraded, nothing lost.
    #[test]
    fn prop_faulted_run_matches_fault_free_verdicts(
        app_seed in 0u64..40,
        sim_seeds in proptest::collection::vec(1u64..500, 3..8),
        chaos_seed in 0u64..10_000,
        panic_budget in 1u64..12,
        kill_once in any::<bool>(),
        rca_workers in 1usize..3,
    ) {
        let seeds: BTreeSet<u64> = sim_seeds.into_iter().collect();
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| simulate(12, app_seed, s, true))
            .collect();
        let pipeline = serve_pipeline();

        // Ground truth from the fault-free batch pipeline.
        let anomalous: Vec<&Trace> = traces
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        let mut expected: Vec<(u64, Vec<String>)> = anomalous
            .iter()
            .zip(pipeline.analyze(&anomalous, AnalyzeOptions::unclustered()))
            .map(|(t, r)| (t.trace_id(), r.services))
            .collect();
        expected.sort_unstable();

        let plan = RuntimeFaultPlan {
            seed: chaos_seed,
            kill_each_rca_worker_once: kill_once,
            rca_panic_rate: 0.5,
            rca_panic_budget: panic_budget,
            rca_delay_rate: 0.25,
            rca_delay_us: 50,
            rca_delay_budget: 8,
            shard_stall_rate: 0.25,
            shard_stall_us: 50,
            shard_stall_budget: 8,
            clock_skew_us: 100,
            ..RuntimeFaultPlan::default()
        };
        let injector = Arc::new(SeededInjector::new(plan));
        let runtime = ServeRuntime::start_with_injector(
            Arc::clone(&pipeline),
            ServeConfig {
                num_shards: 2,
                rca_workers,
                resilience: ResilienceConfig {
                    // Keep the breaker out of the picture: this property
                    // is about supervision + retry, not degradation.
                    breaker_threshold: 1 << 20,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            Arc::clone(&injector) as Arc<dyn FaultInjector>,
        )
        .expect("valid serve config");
        for t in &traces {
            let report = runtime.submit_batch(t.spans().to_vec(), 0);
            prop_assert_eq!(report.rejected + report.shed + report.invalid, 0);
        }
        let report = runtime.shutdown();
        let m = &report.metrics;

        prop_assert!(report.quarantined.is_empty(),
            "retried faults must not poison traces: {:?}",
            report.quarantined.iter().map(|q| (&q.reason, q.trace_id)).collect::<Vec<_>>());
        prop_assert_eq!(m.poison_traces, 0);
        let mut online: Vec<(u64, Vec<String>)> = report
            .verdicts
            .iter()
            .map(|v| (v.trace_id, v.services.clone()))
            .collect();
        online.sort_unstable();
        prop_assert_eq!(online, expected);
        prop_assert!(report.verdicts.iter().all(|v| !v.degraded));
        prop_assert_eq!(
            m.spans_submitted,
            m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
        );
    }
}
