//! Cross-crate property-based tests: invariants that must hold for any
//! generated application, any simulated trace, and any format
//! round-trip.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth::cluster::{hdbscan, DistanceMatrix, HdbscanParams, TraceSetEncoder};
use sleuth::synth::chaos::{ChaosEngine, FaultPlan};
use sleuth::synth::generator::{generate_app, GeneratorConfig};
use sleuth::synth::Simulator;
use sleuth::trace::{exclusive, formats, SpanKind, Trace};

/// Simulate one trace of a generated app, under an arbitrary fault plan.
fn simulate(n_rpcs: usize, app_seed: u64, sim_seed: u64, faulty: bool) -> Trace {
    let app = generate_app(&GeneratorConfig::synthetic(n_rpcs), app_seed);
    let sim = Simulator::new(&app);
    let mut rng = ChaCha8Rng::seed_from_u64(sim_seed);
    let plan = if faulty {
        ChaosEngine::default().sample_nonempty_plan(&app, &mut rng)
    } else {
        FaultPlan::healthy()
    };
    sim.simulate(0, &plan, sim_seed, &mut rng).trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every simulated trace is a well-formed tree with sane physics:
    /// parents precede children, synchronous children nest inside their
    /// parents, exclusive durations never exceed full durations.
    #[test]
    fn prop_simulated_traces_are_physical(
        app_seed in 0u64..200,
        sim_seed in 0u64..1000,
        faulty in any::<bool>(),
    ) {
        let trace = simulate(16, app_seed, sim_seed, faulty);
        prop_assert!(trace.len() >= 1);
        let ex = exclusive::exclusive_durations(&trace);
        for (i, span) in trace.iter() {
            prop_assert!(span.end_us >= span.start_us);
            prop_assert!(ex[i] <= span.duration_us());
            if let Some(p) = trace.parent(i) {
                prop_assert!(p < i, "topological order violated");
                let ps = trace.span(p);
                if span.kind != SpanKind::Consumer {
                    prop_assert!(span.start_us >= ps.start_us);
                    prop_assert!(span.end_us <= ps.end_us,
                        "sync span escapes parent: {} [{},{}] vs parent [{},{}]",
                        span.name, span.start_us, span.end_us, ps.start_us, ps.end_us);
                }
            }
        }
        // Exclusive errors imply errors.
        let ee = exclusive::exclusive_errors(&trace);
        for (i, _) in trace.iter() {
            if ee[i] {
                prop_assert!(trace.span(i).is_error());
            }
        }
    }

    /// All three interchange formats round-trip simulated spans exactly.
    #[test]
    fn prop_format_roundtrips(app_seed in 0u64..100, sim_seed in 0u64..500) {
        let trace = simulate(16, app_seed, sim_seed, true);
        let spans = trace.spans().to_vec();
        prop_assert_eq!(&formats::from_otel(&formats::to_otel(&spans)).unwrap(), &spans);
        prop_assert_eq!(&formats::from_zipkin(&formats::to_zipkin(&spans)).unwrap(), &spans);
        prop_assert_eq!(&formats::from_jaeger(&formats::to_jaeger(&spans)).unwrap(), &spans);
    }

    /// The trace distance is a bounded semi-metric on simulated traces,
    /// and identical traces are at distance zero.
    #[test]
    fn prop_trace_distance_semimetric(app_seed in 0u64..50, s1 in 0u64..200, s2 in 0u64..200) {
        let a = simulate(16, app_seed, s1, false);
        let b = simulate(16, app_seed, s2, true);
        let enc = TraceSetEncoder::new(3);
        let (sa, sb) = (enc.encode(&a), enc.encode(&b));
        let d_ab = sleuth::cluster::distance::trace_distance(&sa, &sb);
        let d_ba = sleuth::cluster::distance::trace_distance(&sb, &sa);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert_eq!(sleuth::cluster::distance::trace_distance(&sa, &sa), 0.0);
    }

    /// HDBSCAN labels are always valid: contiguous cluster ids from 0,
    /// noise as -1, every selected cluster at least min_cluster_size.
    #[test]
    fn prop_hdbscan_labels_valid(
        app_seed in 0u64..30,
        n in 8usize..24,
        mcs in 3usize..6,
    ) {
        let traces: Vec<Trace> = (0..n).map(|i| simulate(16, app_seed, i as u64, i % 3 == 0)).collect();
        let enc = TraceSetEncoder::new(3);
        let sets: Vec<_> = traces.iter().map(|t| enc.encode(t)).collect();
        let dm = DistanceMatrix::from_sets(&sets);
        let c = hdbscan(&dm, &HdbscanParams {
            min_cluster_size: mcs,
            min_samples: 2,
            cluster_selection_epsilon: 0.0,
            allow_single_cluster: true,
        });
        prop_assert_eq!(c.labels.len(), n);
        let k = c.n_clusters() as isize;
        for &l in &c.labels {
            prop_assert!(l == -1 || (0..k).contains(&l), "label {l} out of range");
        }
        for cl in 0..k {
            let size = c.members(cl).len();
            prop_assert!(size >= mcs, "cluster {cl} has only {size} members (mcs {mcs})");
        }
    }

    /// The GNN counterfactual with no intervention reproduces the
    /// observed trace for any simulated input, even with an untrained
    /// model (abduction invariant).
    #[test]
    fn prop_counterfactual_reproduces_observation(app_seed in 0u64..50, sim_seed in 0u64..200) {
        let trace = simulate(16, app_seed, sim_seed, true);
        let mut featurizer = sleuth::gnn::Featurizer::new(8);
        let enc = featurizer.encode(&trace);
        let model = sleuth::gnn::SleuthModel::new(&sleuth::gnn::ModelConfig::default(), app_seed);
        let pred = model.predict_counterfactual(&enc, &[]);
        for i in 0..enc.len() {
            prop_assert!((pred.d_scaled[i] - enc.d_scaled[i]).abs() < 1e-3,
                "span {i}: {} vs {}", pred.d_scaled[i], enc.d_scaled[i]);
            prop_assert!((pred.e_prob[i] - enc.e[i]).abs() < 1e-4);
        }
    }
}
