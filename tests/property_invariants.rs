//! Cross-crate property-based tests: invariants that must hold for any
//! generated application, any simulated trace, and any format
//! round-trip.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use sleuth::chaos::{FaultPlan as RuntimeFaultPlan, SeededInjector};
use sleuth::cluster::{
    hdbscan, trace_distance, trace_distance_hashed, DistanceMatrix, HdbscanParams, TraceSetEncoder,
};
use sleuth::core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{shard_of, FaultInjector, ResilienceConfig, ServeConfig, ServeRuntime};
use sleuth::synth::chaos::{ChaosEngine, FaultPlan};
use sleuth::synth::generator::{generate_app, GeneratorConfig};
use sleuth::synth::workload::CorpusBuilder;
use sleuth::synth::Simulator;
use sleuth::trace::{exclusive, formats, Interner, SpanKind, Symbol, Trace};

/// Simulate one trace of a generated app, under an arbitrary fault plan.
fn simulate(n_rpcs: usize, app_seed: u64, sim_seed: u64, faulty: bool) -> Trace {
    let app = generate_app(&GeneratorConfig::synthetic(n_rpcs), app_seed);
    let sim = Simulator::new(&app);
    let mut rng = ChaCha8Rng::seed_from_u64(sim_seed);
    let plan = if faulty {
        ChaosEngine::default().sample_nonempty_plan(&app, &mut rng)
    } else {
        FaultPlan::healthy()
    };
    sim.simulate(0, &plan, sim_seed, &mut rng).trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every simulated trace is a well-formed tree with sane physics:
    /// parents precede children, synchronous children nest inside their
    /// parents, exclusive durations never exceed full durations.
    #[test]
    fn prop_simulated_traces_are_physical(
        app_seed in 0u64..200,
        sim_seed in 0u64..1000,
        faulty in any::<bool>(),
    ) {
        let trace = simulate(16, app_seed, sim_seed, faulty);
        prop_assert!(!trace.is_empty());
        let ex = exclusive::exclusive_durations(&trace);
        for (i, span) in trace.iter() {
            prop_assert!(span.end_us >= span.start_us);
            prop_assert!(ex[i] <= span.duration_us());
            if let Some(p) = trace.parent(i) {
                prop_assert!(p < i, "topological order violated");
                let ps = trace.span(p);
                if span.kind != SpanKind::Consumer {
                    prop_assert!(span.start_us >= ps.start_us);
                    prop_assert!(span.end_us <= ps.end_us,
                        "sync span escapes parent: {} [{},{}] vs parent [{},{}]",
                        span.name, span.start_us, span.end_us, ps.start_us, ps.end_us);
                }
            }
        }
        // Exclusive errors imply errors.
        let ee = exclusive::exclusive_errors(&trace);
        for (i, _) in trace.iter() {
            if ee[i] {
                prop_assert!(trace.span(i).is_error());
            }
        }
    }

    /// All three interchange formats round-trip simulated spans exactly.
    #[test]
    fn prop_format_roundtrips(app_seed in 0u64..100, sim_seed in 0u64..500) {
        let trace = simulate(16, app_seed, sim_seed, true);
        let spans = trace.spans().to_vec();
        prop_assert_eq!(&formats::from_otel(&formats::to_otel(&spans)).unwrap(), &spans);
        prop_assert_eq!(&formats::from_zipkin(&formats::to_zipkin(&spans)).unwrap(), &spans);
        prop_assert_eq!(&formats::from_jaeger(&formats::to_jaeger(&spans)).unwrap(), &spans);
    }

    /// The trace distance is a bounded semi-metric on simulated traces,
    /// and identical traces are at distance zero.
    #[test]
    fn prop_trace_distance_semimetric(app_seed in 0u64..50, s1 in 0u64..200, s2 in 0u64..200) {
        let a = simulate(16, app_seed, s1, false);
        let b = simulate(16, app_seed, s2, true);
        let enc = TraceSetEncoder::new(3);
        let (sa, sb) = (enc.encode(&a), enc.encode(&b));
        let d_ab = sleuth::cluster::distance::trace_distance(&sa, &sb);
        let d_ba = sleuth::cluster::distance::trace_distance(&sb, &sa);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert_eq!(sleuth::cluster::distance::trace_distance(&sa, &sa), 0.0);
    }

    /// HDBSCAN labels are always valid: contiguous cluster ids from 0,
    /// noise as -1, every selected cluster at least min_cluster_size.
    #[test]
    fn prop_hdbscan_labels_valid(
        app_seed in 0u64..30,
        n in 8usize..24,
        mcs in 3usize..6,
    ) {
        let traces: Vec<Trace> = (0..n).map(|i| simulate(16, app_seed, i as u64, i % 3 == 0)).collect();
        let enc = TraceSetEncoder::new(3);
        let sets: Vec<_> = traces.iter().map(|t| enc.encode(t)).collect();
        let dm = DistanceMatrix::builder().build_from(&sets);
        let c = hdbscan(&dm, &HdbscanParams {
            min_cluster_size: mcs,
            min_samples: 2,
            cluster_selection_epsilon: 0.0,
            allow_single_cluster: true,
        });
        prop_assert_eq!(c.labels.len(), n);
        let k = c.n_clusters() as isize;
        for &l in &c.labels {
            prop_assert!(l == -1 || (0..k).contains(&l), "label {l} out of range");
        }
        for cl in 0..k {
            let size = c.members(cl).len();
            prop_assert!(size >= mcs, "cluster {cl} has only {size} members (mcs {mcs})");
        }
    }

    /// The GNN counterfactual with no intervention reproduces the
    /// observed trace for any simulated input, even with an untrained
    /// model (abduction invariant).
    #[test]
    fn prop_counterfactual_reproduces_observation(app_seed in 0u64..50, sim_seed in 0u64..200) {
        let trace = simulate(16, app_seed, sim_seed, true);
        let mut featurizer = sleuth::gnn::Featurizer::new(8);
        let enc = featurizer.encode(&trace);
        let model = sleuth::gnn::SleuthModel::new(&sleuth::gnn::ModelConfig::default(), app_seed);
        let pred = model.predict_counterfactual(&enc, &[]);
        for i in 0..enc.len() {
            prop_assert!((pred.d_scaled[i] - enc.d_scaled[i]).abs() < 1e-3,
                "span {i}: {} vs {}", pred.d_scaled[i], enc.d_scaled[i]);
            prop_assert!((pred.e_prob[i] - enc.e[i]).abs() < 1e-4);
        }
    }

    /// Shard routing is a pure, stable function: the same trace id
    /// always lands on the same in-range shard, regardless of when or
    /// in what order batches arrive.
    #[test]
    fn prop_shard_routing_deterministic(
        ids in proptest::collection::vec(0u64..=u64::MAX, 1..64),
        num_shards in 1usize..12,
    ) {
        for &id in &ids {
            let s = shard_of(id, num_shards);
            prop_assert!(s < num_shards);
            prop_assert_eq!(s, shard_of(id, num_shards), "routing not stable");
            prop_assert_eq!(shard_of(id, 1), 0);
        }
        // Order-independence: routing a reversed stream is identical.
        let forward: Vec<usize> = ids.iter().map(|&i| shard_of(i, num_shards)).collect();
        let mut backward: Vec<usize> =
            ids.iter().rev().map(|&i| shard_of(i, num_shards)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }
}

/// One quick-fitted pipeline shared by the serving properties below.
fn serve_pipeline() -> Arc<SleuthPipeline> {
    static PIPELINE: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(PIPELINE.get_or_init(|| {
        let app = sleuth::synth::presets::synthetic(12, 1);
        let train = CorpusBuilder::new(&app)
            .seed(5)
            .normal_traces(100)
            .plain_traces();
        let config = PipelineConfig {
            train: TrainConfig {
                epochs: 10,
                batch_traces: 32,
                lr: 1e-2,
                seed: 0,
            },
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shutting down immediately after ingest — no ticks, no idle
    /// windows elapsed — still drains every ingested trace exactly
    /// once: the flush path loses nothing.
    #[test]
    fn prop_drain_after_shutdown_loses_no_traces(
        app_seed in 0u64..40,
        sim_seeds in proptest::collection::vec(1u64..500, 2..6),
        num_shards in 1usize..6,
    ) {
        let seeds: BTreeSet<u64> = sim_seeds.into_iter().collect();
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| simulate(12, app_seed, s, s % 2 == 0))
            .collect();
        let pipeline = serve_pipeline();
        let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
            num_shards,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        for t in &traces {
            let report = runtime.submit_batch(t.spans().to_vec(), 0);
            prop_assert_eq!(report.rejected + report.shed, 0);
        }
        let report = runtime.shutdown();
        let m = &report.metrics;
        prop_assert_eq!(report.store.trace_count(), traces.len());
        prop_assert_eq!(m.traces_completed, traces.len() as u64);
        prop_assert_eq!(m.traces_malformed, 0);
        prop_assert_eq!(
            m.spans_submitted,
            m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
        );
        // Verdicts match the batch pipeline over the same traces.
        let anomalous: Vec<&Trace> = traces
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        prop_assert_eq!(report.verdicts.len(), anomalous.len());
        let mut online: Vec<u64> = report.verdicts.iter().map(|v| v.trace_id).collect();
        online.sort_unstable();
        let mut expected: Vec<u64> = anomalous.iter().map(|t| t.trace_id()).collect();
        expected.sort_unstable();
        prop_assert_eq!(online, expected);
    }

    /// Verdict model versions are non-decreasing in emission order and
    /// every verdict is tagged, no matter when hot-swaps land relative
    /// to ingest. Publishing the same pipeline leaves verdict content
    /// untouched — only the version tag moves.
    #[test]
    fn prop_verdict_versions_monotonic_across_swaps(
        app_seed in 0u64..40,
        sim_seeds in proptest::collection::vec(1u64..500, 3..8),
        publish_before in 0usize..8,
    ) {
        let seeds: BTreeSet<u64> = sim_seeds.into_iter().collect();
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| simulate(12, app_seed, s, true))
            .collect();
        let pipeline = serve_pipeline();
        let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
            num_shards: 2,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        for (i, t) in traces.iter().enumerate() {
            if i == publish_before {
                let v = runtime.publish(Arc::clone(&pipeline));
                prop_assert_eq!(v, sleuth::serve::ModelVersion(2));
            }
            let report = runtime.submit_batch(t.spans().to_vec(), 0);
            prop_assert_eq!(report.rejected + report.shed, 0);
        }
        let report = runtime.shutdown();
        let m = &report.metrics;
        let current = if publish_before < traces.len() { 2 } else { 1 };
        for pair in report.verdicts.windows(2) {
            prop_assert!(pair[0].model_version <= pair[1].model_version);
        }
        for v in &report.verdicts {
            prop_assert!(v.model_version.0 >= 1 && v.model_version.0 <= current);
        }
        let tagged: u64 = m.verdicts_by_version.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(tagged, m.verdicts_emitted);
        prop_assert_eq!(m.verdicts_emitted, report.verdicts.len() as u64);
        // Same pipeline on both sides of the swap: content matches the
        // batch pipeline exactly.
        let anomalous: Vec<&Trace> = traces
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        prop_assert_eq!(report.verdicts.len(), anomalous.len());
    }

    /// Fault transparency: under any seeded runtime fault plan whose
    /// faults eventually fall silent (budgeted panics and delays, all
    /// injected at attempt 0 so the supervised retry succeeds), the
    /// surviving traces receive exactly the verdicts of a fault-free
    /// run — nothing quarantined, nothing degraded, nothing lost.
    #[test]
    fn prop_faulted_run_matches_fault_free_verdicts(
        app_seed in 0u64..40,
        sim_seeds in proptest::collection::vec(1u64..500, 3..8),
        chaos_seed in 0u64..10_000,
        panic_budget in 1u64..12,
        kill_once in any::<bool>(),
        rca_workers in 1usize..3,
    ) {
        let seeds: BTreeSet<u64> = sim_seeds.into_iter().collect();
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| simulate(12, app_seed, s, true))
            .collect();
        let pipeline = serve_pipeline();

        // Ground truth from the fault-free batch pipeline.
        let anomalous: Vec<&Trace> = traces
            .iter()
            .filter(|t| pipeline.detector().is_anomalous(t))
            .collect();
        let mut expected: Vec<(u64, Vec<String>)> = anomalous
            .iter()
            .zip(pipeline.analyze(&anomalous, AnalyzeOptions::unclustered()))
            .map(|(t, r)| (t.trace_id(), r.services))
            .collect();
        expected.sort_unstable();

        let plan = RuntimeFaultPlan {
            seed: chaos_seed,
            kill_each_rca_worker_once: kill_once,
            rca_panic_rate: 0.5,
            rca_panic_budget: panic_budget,
            rca_delay_rate: 0.25,
            rca_delay_us: 50,
            rca_delay_budget: 8,
            shard_stall_rate: 0.25,
            shard_stall_us: 50,
            shard_stall_budget: 8,
            clock_skew_us: 100,
            ..RuntimeFaultPlan::default()
        };
        let injector = Arc::new(SeededInjector::new(plan));
        let runtime = ServeRuntime::start_with_injector(
            Arc::clone(&pipeline),
            ServeConfig {
                num_shards: 2,
                rca_workers,
                resilience: ResilienceConfig {
                    // Keep the breaker out of the picture: this property
                    // is about supervision + retry, not degradation.
                    breaker_threshold: 1 << 20,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
            Arc::clone(&injector) as Arc<dyn FaultInjector>,
        )
        .expect("valid serve config");
        for t in &traces {
            let report = runtime.submit_batch(t.spans().to_vec(), 0);
            prop_assert_eq!(report.rejected + report.shed + report.invalid, 0);
        }
        let report = runtime.shutdown();
        let m = &report.metrics;

        prop_assert!(report.quarantined.is_empty(),
            "retried faults must not poison traces: {:?}",
            report.quarantined.iter().map(|q| (&q.reason, q.trace_id)).collect::<Vec<_>>());
        prop_assert_eq!(m.poison_traces, 0);
        let mut online: Vec<(u64, Vec<String>)> = report
            .verdicts
            .iter()
            .map(|v| (v.trace_id, v.services.clone()))
            .collect();
        online.sort_unstable();
        prop_assert_eq!(online, expected);
        prop_assert!(report.verdicts.iter().all(|v| !v.degraded));
        prop_assert_eq!(
            m.spans_submitted,
            m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
        );
    }
}

// ---------------------------------------------------------------------------
// Wire frame properties: the binary protocol must round-trip every
// frame type exactly, and decoding untrusted bytes must be total —
// structured errors, never panics, work bounded by the declared
// (capped) frame length.
// ---------------------------------------------------------------------------

use sleuth::serve::metrics::HISTOGRAM_BUCKETS;
use sleuth::serve::{HistogramSnapshot, MetricsSnapshot, ModelVersion, QuarantineReason, Verdict};
use sleuth::trace::{Span, StatusCode};
use sleuth::wire::{
    decode_frame_bytes, encode_frame, frame_checksum, Frame, Msg, ShardFinal, WireQuarantined,
    DEFAULT_MAX_FRAME_LEN, HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};

fn wire_string(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

fn wire_span(rng: &mut ChaCha8Rng) -> Span {
    let service = wire_string(rng, 12);
    let name = wire_string(rng, 12);
    Span {
        trace_id: rng.next_u64(),
        span_id: rng.next_u64(),
        parent_span_id: rng.gen_bool(0.5).then(|| rng.next_u64()),
        service: service.as_str().into(),
        name: name.as_str().into(),
        kind: SpanKind::ALL[rng.gen_range(0..SpanKind::ALL.len())],
        start_us: rng.next_u64(),
        end_us: rng.next_u64(),
        status: match rng.gen_range(0u8..3) {
            0 => StatusCode::Unset,
            1 => StatusCode::Ok,
            _ => StatusCode::Error,
        },
        pod: wire_string(rng, 8).as_str().into(),
        node: wire_string(rng, 8).as_str().into(),
    }
}

fn wire_verdict(rng: &mut ChaCha8Rng) -> Verdict {
    Verdict {
        trace_id: rng.next_u64(),
        services: (0..rng.gen_range(0usize..4))
            .map(|_| wire_string(rng, 10))
            .collect(),
        cluster: rng.gen_bool(0.5).then(|| rng.gen_range(-2isize..100)),
        rca_latency_us: rng.next_u64(),
        model_version: ModelVersion(rng.next_u64()),
        degraded: rng.gen_bool(0.5),
    }
}

fn wire_quarantined(rng: &mut ChaCha8Rng) -> WireQuarantined {
    WireQuarantined {
        trace_id: rng.gen_bool(0.7).then(|| rng.next_u64()),
        span_count: rng.next_u64(),
        reason: match rng.gen_range(0u8..3) {
            0 => QuarantineReason::Assembly(wire_string(rng, 24)),
            1 => QuarantineReason::RcaPanic {
                worker: rng.gen_range(0usize..64),
                attempts: rng.gen_range(0u32..10),
            },
            _ => QuarantineReason::ShardPanic {
                shard: rng.gen_range(0usize..64),
            },
        },
        origin_shard: rng.gen_bool(0.7).then(|| rng.next_u64()),
    }
}

fn wire_histogram(rng: &mut ChaCha8Rng) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for b in h.buckets.iter_mut() {
        *b = rng.gen_range(0u64..1_000);
    }
    h.count = h.buckets.iter().sum();
    h.sum = rng.next_u64() >> 16;
    let _ = HISTOGRAM_BUCKETS; // bucket count is fixed by the serve crate
    h
}

// Field-by-field construction is the point here: every counter gets
// an independent random value so a codec that drops or swaps fields
// cannot round-trip.
#[allow(clippy::field_reassign_with_default)]
fn wire_metrics(rng: &mut ChaCha8Rng) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::default();
    m.spans_submitted = rng.next_u64();
    m.spans_enqueued = rng.next_u64();
    m.spans_rejected = rng.next_u64();
    m.spans_shed = rng.next_u64();
    m.spans_evicted = rng.next_u64();
    m.spans_deduped = rng.next_u64();
    m.spans_stored = rng.next_u64();
    m.traces_completed = rng.next_u64();
    m.traces_malformed = rng.next_u64();
    m.traces_anomalous = rng.next_u64();
    m.verdicts_emitted = rng.next_u64();
    m.rca_latency_us = wire_histogram(rng);
    m.queue_depth = wire_histogram(rng);
    m.model_swaps = rng.next_u64();
    m.swap_drain_us = wire_histogram(rng);
    m.baseline_refreshes = rng.next_u64();
    m.refresh_traces_folded = rng.next_u64();
    m.refresh_traces_shed = rng.next_u64();
    m.refresh_staleness_traces = wire_histogram(rng);
    m.lock_poisoned = rng.next_u64();
    m.poison_traces = rng.next_u64();
    m.quarantine_dropped = rng.next_u64();
    m.spans_quarantined = rng.next_u64();
    m.verdicts_degraded = rng.next_u64();
    m.breaker_trips = rng.next_u64();
    m.verdicts_by_version = (0..rng.gen_range(0u64..4))
        .map(|v| (v, rng.next_u64()))
        .collect();
    m.rca_worker_latency_us = (0..rng.gen_range(0usize..3))
        .map(|w| (w, wire_histogram(rng)))
        .collect();
    m.worker_panics = (0..rng.gen_range(0usize..3))
        .map(|w| (wire_string(rng, 8), w, rng.next_u64()))
        .collect();
    m.worker_restarts = (0..rng.gen_range(0usize..3))
        .map(|w| (wire_string(rng, 8), w, rng.next_u64()))
        .collect();
    m.spans_rejected_by_reason = (0..rng.gen_range(0usize..3))
        .map(|_| (wire_string(rng, 12), rng.next_u64()))
        .collect();
    m.degraded_by_reason = (0..rng.gen_range(0usize..3))
        .map(|_| (wire_string(rng, 12), rng.next_u64()))
        .collect();
    m.quarantined_by_reason = (0..rng.gen_range(0usize..3))
        .map(|_| (wire_string(rng, 12), rng.next_u64()))
        .collect();
    m
}

/// Every `Msg` variant, selected by `which`, with seeded random content.
fn wire_msg(rng: &mut ChaCha8Rng, which: usize) -> Msg {
    match which % 12 {
        0 => Msg::SpanBatch {
            now_us: rng.next_u64(),
            spans: (0..rng.gen_range(0usize..6))
                .map(|_| wire_span(rng))
                .collect(),
        },
        1 => Msg::Tick {
            now_us: rng.next_u64(),
        },
        2 => Msg::Publish,
        3 => Msg::RefreshBaselines,
        4 => Msg::MetricsRequest,
        5 => Msg::QuarantineDrain,
        6 => Msg::Shutdown,
        7 => Msg::Verdict(wire_verdict(rng)),
        8 => Msg::Quarantined(wire_quarantined(rng)),
        9 => Msg::MetricsReply(Box::new(wire_metrics(rng))),
        10 => Msg::PublishReply {
            version: rng.next_u64(),
        },
        _ => Msg::ShutdownReply(Box::new(ShardFinal {
            metrics: wire_metrics(rng),
            trace_count: rng.next_u64(),
            span_count: rng.next_u64(),
        })),
    }
}

/// Every `Frame` variant: 0–4 are the control frames, 5.. wraps each
/// `Msg` variant in a `Data` frame.
fn wire_frame(rng: &mut ChaCha8Rng, which: usize) -> Frame {
    match which % 20 {
        0 => Frame::Hello {
            min_version: rng.gen_range(0u16..4),
            max_version: rng.gen_range(0u16..4),
            session_id: rng.next_u64(),
            resume: rng.gen_bool(0.5),
        },
        1 => Frame::HelloAck {
            version: rng.gen_range(0u16..4),
            resumed: rng.gen_bool(0.5),
        },
        2 => Frame::Ack {
            upto: rng.next_u64(),
        },
        3 => Frame::Nack {
            expected: rng.next_u64(),
        },
        4 => Frame::Error {
            code: wire_string(rng, 16),
            detail: wire_string(rng, 40),
        },
        5 => Frame::Heartbeat {
            nonce: rng.next_u64(),
        },
        6 => Frame::HeartbeatAck {
            nonce: rng.next_u64(),
        },
        7 => Frame::Goodbye {
            reason: wire_string(rng, 24),
        },
        n => Frame::Data {
            seq: rng.next_u64(),
            msg: wire_msg(rng, n - 8),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// decode(encode(frame)) == frame for every frame and message type.
    #[test]
    fn prop_wire_frames_roundtrip(seed in any::<u64>(), which in 0usize..20) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frame = wire_frame(&mut rng, which);
        let bytes = encode_frame(&frame, PROTOCOL_VERSION);
        let decoded = decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN);
        prop_assert_eq!(decoded.as_ref(), Ok(&frame), "{:?}", frame);
    }

    /// Arbitrary bytes never panic the decoder (and, lacking the magic
    /// preamble by overwhelming odds, never decode).
    #[test]
    fn prop_wire_arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let _ = decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN);
        // A tight cap must also hold (bounds the work an attacker can
        // force with a huge declared length).
        let _ = decode_frame_bytes(&bytes, 64);
    }

    /// Adversarial payloads under a *valid* header and *correct*
    /// checksum (the worst case that reaches the body decoder) never
    /// panic, for every known tag and a few unknown ones.
    #[test]
    fn prop_wire_adversarial_payloads_never_panic(
        tag_idx in 0usize..23,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let tags: [u8; 23] = [
            1, 2, 3, 4, 5, 6, 7, 8, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 0, 0x60, 0xff,
        ];
        let tag = tags[tag_idx];
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        bytes.push(tag);
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let _ = decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN);
    }

    /// Every strict prefix of a valid frame is rejected as truncated —
    /// never a panic, never a bogus decode.
    #[test]
    fn prop_wire_truncated_prefixes_rejected(seed in any::<u64>(), which in 0usize..20) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frame = wire_frame(&mut rng, which);
        let bytes = encode_frame(&frame, PROTOCOL_VERSION);
        for cut in 0..bytes.len() {
            match decode_frame_bytes(&bytes[..cut], DEFAULT_MAX_FRAME_LEN) {
                Err(sleuth::wire::WireError::Truncated { .. }) => {}
                other => prop_assert!(false, "cut at {}: {:?}", cut, other),
            }
        }
    }

    /// Any single-byte corruption of a valid frame is *detected*: the
    /// magic, version, flags, and length fields are each validated,
    /// and the checksum covers the frame type and payload — so no
    /// flip yields a silently different frame.
    #[test]
    fn prop_wire_byte_flips_detected(
        seed in any::<u64>(),
        which in 0usize..20,
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let frame = wire_frame(&mut rng, which);
        let mut bytes = encode_frame(&frame, PROTOCOL_VERSION);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        prop_assert!(
            decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN).is_err(),
            "flip {:#04x} at {} of {:?} went undetected",
            flip, pos, frame
        );
    }
}

// ---------------------------------------------------------------------
// Hot-path kernels: string interning and the sorted-merge distance.
// tier1.sh runs exactly these via
// `cargo test --test property_invariants hotpath_`.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interning round-trips: the symbol resolves back to the exact
    /// string, re-interning is idempotent, and lookup/get/from_id all
    /// agree with the original handle.
    #[test]
    fn hotpath_intern_resolve_roundtrip(s in "\\PC{0,40}") {
        let sym = Symbol::intern(&s);
        prop_assert_eq!(sym.as_str(), s.as_str());
        prop_assert_eq!(Symbol::intern(&s), sym);
        prop_assert_eq!(Symbol::lookup(&s), Some(sym));
        prop_assert_eq!(Symbol::from_id(sym.id()).as_str(), s.as_str());
        let interner = Interner::global();
        prop_assert_eq!(interner.get(&s), Some(sym));
        prop_assert_eq!(interner.resolve(sym), s.as_str());
    }

    /// The interned sorted-merge weighted Jaccard is *bit-identical*
    /// to the legacy hashed `BTreeMap` merge on simulated traces.
    /// Encoder weights are integer-valued f64 (span microseconds), so
    /// every per-pair sum is an exact integer well below 2^53 and the
    /// result cannot depend on merge order — any bit divergence is a
    /// real kernel bug, not floating-point noise.
    #[test]
    fn hotpath_distance_bitwise_matches_hashed(
        app_seed in 0u64..60,
        s1 in 0u64..300,
        s2 in 0u64..300,
        faulty in any::<bool>(),
    ) {
        let a = simulate(16, app_seed, s1, false);
        let b = simulate(16, app_seed, s2, faulty);
        let enc = TraceSetEncoder::new(3);
        let d_new = trace_distance(&enc.encode(&a), &enc.encode(&b));
        let d_old = trace_distance_hashed(&enc.encode_hashed(&a), &enc.encode_hashed(&b));
        prop_assert_eq!(d_new.to_bits(), d_old.to_bits(), "new={} old={}", d_new, d_old);
        let self_new = trace_distance(&enc.encode(&a), &enc.encode(&a));
        let self_old = trace_distance_hashed(&enc.encode_hashed(&a), &enc.encode_hashed(&a));
        prop_assert_eq!(self_new.to_bits(), self_old.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Differential OTLP parsing: the zero-copy scanner vs a naive
// serde_json::Value reference parser.
// ---------------------------------------------------------------------------

/// An adversarial-but-parseable string: ASCII, quotes, backslashes,
/// control characters, BMP unicode, and astral codepoints (which the
/// escaped emitter renders as surrogate pairs).
fn otlp_string(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '3', ' ', '_', '"', '\\', '/', '\n', '\t', '\u{8}', '\u{c}', '\r', '\u{1}',
        'é', 'ß', '→', '漢', '\u{7ff}', '\u{ffff}', '😀', '𝕊', '\u{10ffff}',
    ];
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

/// Emit `s` as a JSON string literal. `escape_all` renders every char
/// as `\uXXXX` (surrogate pairs for astral); otherwise only what JSON
/// requires is escaped and the rest rides raw UTF-8.
fn emit_json_string(s: &str, escape_all: bool, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        if escape_all {
            let mut units = [0u16; 2];
            for u in c.encode_utf16(&mut units) {
                out.push_str(&format!("\\u{u:04x}"));
            }
        } else {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

/// A hex id of 4, 8, 16 or 32 digits (mixed case); ids longer than 16
/// digits must truncate to their low 64 bits on both parsers.
fn otlp_hex_id(rng: &mut ChaCha8Rng) -> String {
    let full = format!("{:032x}", (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()));
    let digits = [4, 8, 16, 32][rng.gen_range(0..4)];
    let mut s = full[32 - digits..].to_string();
    if rng.gen_bool(0.3) {
        s = s.to_uppercase();
    }
    s
}

/// A value for an unknown field the scanner must skip: scalars,
/// strings with escapes, and nested arrays/objects.
fn otlp_junk_value(rng: &mut ChaCha8Rng, depth: usize, out: &mut String) {
    match rng.gen_range(0..if depth == 0 { 4 } else { 6 }) {
        0 => out.push_str("null"),
        1 => out.push_str(if rng.gen_bool(0.5) { "true" } else { "false" }),
        2 => out.push_str(&format!("{}", rng.next_u64())),
        3 => emit_json_string(&otlp_string(rng, 8), rng.gen_bool(0.5), out),
        4 => {
            out.push('[');
            for i in 0..rng.gen_range(0..3) {
                if i > 0 {
                    out.push(',');
                }
                otlp_junk_value(rng, depth - 1, out);
            }
            out.push(']');
        }
        _ => {
            out.push('{');
            for i in 0..rng.gen_range(0..3) {
                if i > 0 {
                    out.push(',');
                }
                emit_json_string(&format!("extra{i}"), false, out);
                out.push(':');
                otlp_junk_value(rng, depth - 1, out);
            }
            out.push('}');
        }
    }
}

const OTLP_KINDS: &[&str] = &[
    "SPAN_KIND_CLIENT",
    "SPAN_KIND_SERVER",
    "SPAN_KIND_PRODUCER",
    "SPAN_KIND_CONSUMER",
    "SPAN_KIND_INTERNAL",
    "SPAN_KIND_UNSPECIFIED",
    "garbage",
];
const OTLP_STATUSES: &[&str] =
    &["STATUS_CODE_UNSET", "STATUS_CODE_OK", "STATUS_CODE_ERROR", "bogus"];

/// One adversarial OTLP-JSON span record: valid ids and times, but
/// hostile strings, quoted-or-bare u64s, shuffled key order, unknown
/// fields, and randomized escaping.
fn otlp_record(rng: &mut ChaCha8Rng) -> String {
    let esc = rng.gen_bool(0.4);
    let mut fields: Vec<String> = Vec::new();
    let mut field = |key: &str, value: String| {
        let mut f = String::new();
        emit_json_string(key, false, &mut f);
        f.push(':');
        f.push_str(&value);
        fields.push(f);
    };
    let quoted_str = |rng: &mut ChaCha8Rng, s: &str| {
        let mut v = String::new();
        emit_json_string(s, esc && rng.gen_bool(0.7), &mut v);
        v
    };
    let emit_u64 = |rng: &mut ChaCha8Rng, v: u64| {
        if rng.gen_bool(0.5) {
            format!("\"{v}\"")
        } else {
            format!("{v}")
        }
    };

    let tid = otlp_hex_id(rng);
    field("traceId", quoted_str(rng, &tid));
    let sid = otlp_hex_id(rng);
    field("spanId", quoted_str(rng, &sid));
    match rng.gen_range(0..4) {
        0 => {} // absent
        1 => field("parentSpanId", "null".into()),
        2 => field("parentSpanId", "\"\"".into()),
        _ => {
            let p = otlp_hex_id(rng);
            field("parentSpanId", quoted_str(rng, &p));
        }
    }
    let name = otlp_string(rng, 12);
    field("name", quoted_str(rng, &name));
    let service = otlp_string(rng, 12);
    field("serviceName", quoted_str(rng, &service));
    let kind = OTLP_KINDS[rng.gen_range(0..OTLP_KINDS.len())];
    field("kind", quoted_str(rng, kind));
    let start = rng.next_u64() >> rng.gen_range(0..32);
    let end = start.saturating_add(rng.next_u64() >> rng.gen_range(16..48));
    field("startTimeUnixNano", emit_u64(rng, start));
    field("endTimeUnixNano", emit_u64(rng, end));
    if rng.gen_bool(0.7) {
        match rng.gen_range(0..3) {
            0 => field("statusCode", "null".into()),
            _ => {
                let s = OTLP_STATUSES[rng.gen_range(0..OTLP_STATUSES.len())];
                field("statusCode", quoted_str(rng, s));
            }
        }
    }
    for (key, slot) in [("podName", 0), ("nodeName", 1)] {
        match rng.gen_range(0..3) {
            0 => {}
            1 => field(key, "null".into()),
            _ => {
                let s = otlp_string(rng, 6 + slot);
                field(key, quoted_str(rng, &s));
            }
        }
    }
    for i in 0..rng.gen_range(0..3) {
        let mut v = String::new();
        otlp_junk_value(rng, 2, &mut v);
        field(&format!("unknownField{i}"), v);
    }

    // Shuffle field order: both parsers must be order-independent.
    for i in (1..fields.len()).rev() {
        fields.swap(i, rng.gen_range(0..=i));
    }
    let ws = |rng: &mut ChaCha8Rng| " \n\t"[..rng.gen_range(0..3)].to_string();
    let mut out = String::from("{");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ws(rng));
        out.push_str(f);
        out.push_str(&ws(rng));
    }
    out.push('}');
    out
}

/// The naive reference: parse the whole document with serde_json,
/// then walk the `Value` tree replicating the documented semantics
/// (low-64-bit id truncation, kind/status fallbacks, ns→µs division,
/// empty/null parent → root, unknown fields ignored).
fn otlp_reference_parse(json: &str) -> Vec<Span> {
    fn ref_hex(s: &str) -> u64 {
        assert!(s.len() % 2 == 0, "reference: odd-length id {s:?}");
        let tail = if s.len() > 16 { &s[s.len() - 16..] } else { s };
        u64::from_str_radix(tail, 16).expect("reference: bad hex id")
    }
    fn ref_u64(v: &serde_json::Value) -> u64 {
        match v {
            serde_json::Value::Number(n) => n.as_u64().expect("reference: negative time"),
            serde_json::Value::String(s) => s.parse().expect("reference: bad quoted u64"),
            other => panic!("reference: time is {}", other.kind()),
        }
    }
    let doc: serde_json::Value = serde_json::from_str(json).expect("reference: malformed JSON");
    doc.as_array()
        .expect("reference: top level is not an array")
        .iter()
        .map(|rec| {
            let obj = rec.as_object().expect("reference: record is not an object");
            let str_of = |k: &str| obj.get(k).and_then(|v| v.as_str());
            let trace_id = ref_hex(str_of("traceId").expect("traceId"));
            let span_id = ref_hex(str_of("spanId").expect("spanId"));
            let parent = str_of("parentSpanId").filter(|p| !p.is_empty()).map(ref_hex);
            let kind = match str_of("kind").expect("kind") {
                "SPAN_KIND_CLIENT" => SpanKind::Client,
                "SPAN_KIND_PRODUCER" => SpanKind::Producer,
                "SPAN_KIND_CONSUMER" => SpanKind::Consumer,
                "SPAN_KIND_INTERNAL" => SpanKind::Internal,
                _ => SpanKind::Server,
            };
            let status = match str_of("statusCode") {
                Some("STATUS_CODE_ERROR") => StatusCode::Error,
                Some("STATUS_CODE_OK") => StatusCode::Ok,
                _ => StatusCode::Unset,
            };
            let start = ref_u64(obj.get("startTimeUnixNano").expect("startTimeUnixNano"));
            let end = ref_u64(obj.get("endTimeUnixNano").expect("endTimeUnixNano"));
            let mut b = Span::builder(
                trace_id,
                span_id,
                str_of("serviceName").expect("serviceName"),
                str_of("name").expect("name"),
            )
            .kind(kind)
            .time(start / 1_000, end / 1_000)
            .status(status)
            .placement(
                str_of("podName").unwrap_or_default(),
                str_of("nodeName").unwrap_or_default(),
            );
            if let Some(p) = parent {
                b = b.parent(p);
            }
            b.build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Differential test for the zero-copy OTLP scanner: arbitrary
    /// span batches rendered as adversarial OTLP JSON — hostile
    /// strings, `\u` escapes with surrogate pairs, quoted vs bare
    /// u64s, 128-bit ids, shuffled keys, unknown (nested) fields —
    /// must parse to exactly the spans a naive serde_json-based
    /// reference parser produces, field for field.
    #[test]
    fn otlp_scanner_matches_reference_parser(seed in any::<u64>(), n in 0usize..6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut json = String::from("[");
        for i in 0..n {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&otlp_record(&mut rng));
        }
        json.push(']');

        let scanned = formats::from_otel_json(&json)
            .unwrap_or_else(|e| panic!("scanner rejected valid batch: {e} in {json}"));
        let reference = otlp_reference_parse(&json);
        prop_assert_eq!(scanned.len(), n);
        prop_assert_eq!(&scanned, &reference, "scanner and reference disagree on {}", json);
    }
}

/// Interning the same strings concurrently from the data-parallel pool
/// yields one stable symbol per string: every worker gets the same id
/// for the same text no matter which worker won the insertion race.
#[test]
fn hotpath_concurrent_interning_is_stable() {
    use sleuth::par::ThreadPool;
    let words: Vec<String> = (0..64).map(|i| format!("hotpath-conc-{i}")).collect();
    let pool = ThreadPool::new(8);
    // Each task interns the full word list starting at a different
    // rotation, so first-insertion races actually happen.
    let rotations: Vec<usize> = (0..32).collect();
    let per_task: Vec<Vec<Symbol>> = pool.par_map(&rotations, |&r| {
        (0..words.len())
            .map(|i| Symbol::intern(&words[(i + r) % words.len()]))
            .collect()
    });
    for (r, syms) in rotations.iter().zip(&per_task) {
        for (i, sym) in syms.iter().enumerate() {
            let word = &words[(i + r) % words.len()];
            assert_eq!(sym.as_str(), word, "symbol resolves to a different string");
            assert_eq!(*sym, Symbol::intern(word), "same text, different symbol");
        }
    }
}
