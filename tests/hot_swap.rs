//! Hot-swap + incremental-refresh integration tests: drifting traffic
//! replayed through the serving runtime must see verdicts follow the
//! refreshed baselines — traffic that violates the stale SLO is
//! flagged under v1, and the same traffic is accepted after a
//! refreshed pipeline is published — with zero dropped traces and no
//! verdict produced across two model versions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{
    BaselineRefresher, ModelVersion, RefreshConfig, ServeConfig, ServeRuntime, Verdict,
};
use sleuth::trace::{Span, SpanKind, Trace};

/// A minimal two-span trace with a controlled end-to-end duration.
fn trace(id: u64, total_us: u64) -> Trace {
    Trace::assemble(vec![
        Span::builder(id, 1, "front", "GET /").time(0, total_us).build(),
        Span::builder(id, 2, "db", "query")
            .parent(1)
            .kind(SpanKind::Client)
            .time(total_us / 4, total_us / 2)
            .build(),
    ])
    .expect("well-formed trace")
}

/// Fit a quick pipeline whose learned SLO is ≈1057µs (p95 of the
/// 1000..1060µs training range).
fn baseline_pipeline() -> Arc<SleuthPipeline> {
    let train: Vec<Trace> = (0..60).map(|i| trace(i, 1000 + i)).collect();
    let config = PipelineConfig::builder()
        .train(TrainConfig { epochs: 2, batch_traces: 16, lr: 1e-2, seed: 0 })
        .build();
    Arc::new(SleuthPipeline::fit(&train, &config))
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn assert_conservation(m: &sleuth::serve::MetricsSnapshot) {
    assert_eq!(
        m.spans_submitted,
        m.spans_stored + m.spans_rejected + m.spans_shed + m.spans_evicted + m.spans_deduped
    );
}

fn assert_versions_monotonic(verdicts: &[Verdict]) {
    for pair in verdicts.windows(2) {
        assert!(
            pair[0].model_version <= pair[1].model_version,
            "verdict versions regressed: {} then {}",
            pair[0].model_version,
            pair[1].model_version
        );
    }
}

/// The chaos drill from the issue: healthy traffic, then a latency
/// drift that the stale v1 baselines flag, then a manual publish of a
/// refreshed pipeline assembled from the drifted traffic itself —
/// after which the same drift is within SLO and only genuinely extreme
/// traces are flagged, now under v2.
#[test]
fn drifting_traffic_follows_refreshed_baselines() {
    let pipeline = baseline_pipeline();
    let config = ServeConfig::builder()
        .num_shards(2)
        .idle_timeout_us(1_000)
        .build()
        .expect("valid serve config");
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), config).expect("start runtime");
    assert_eq!(runtime.current_version(), ModelVersion(1));
    let mut verdicts: Vec<Verdict> = Vec::new();

    // Phase A: healthy traffic, within the learned SLO — no verdicts.
    for i in 0..30u64 {
        runtime.submit_batch(trace(1000 + i, 1000 + i).spans().to_vec(), 0);
    }
    runtime.tick(10_000);
    wait_until(
        || runtime.metrics().traces_completed.get() >= 30,
        "phase A completion",
    );

    // Phase B: latency drifts to ~3×. Every trace violates the stale
    // v1 SLO and is flagged.
    let drifted: Vec<Trace> = (0..20).map(|i| trace(2000 + i, 3_000 + i * 5)).collect();
    for t in &drifted {
        runtime.submit_batch(t.spans().to_vec(), 20_000);
    }
    runtime.tick(30_000);
    wait_until(
        || {
            verdicts.extend(runtime.poll_verdicts());
            verdicts.len() >= 20
        },
        "phase B verdicts",
    );
    assert_eq!(verdicts.len(), 20, "every drifted trace flagged under v1");
    assert!(verdicts.iter().all(|v| v.model_version == ModelVersion(1)));

    // Refresh: fold the drifted traffic into streaming sketches and
    // hot-swap the assembled pipeline. The refreshed SLO sits at the
    // drifted p95 (~3090µs); the GNN is reused without refit.
    let mut refresher = BaselineRefresher::new(Arc::clone(&pipeline), 10);
    for t in &drifted {
        refresher.fold(t);
    }
    assert_eq!(refresher.traces_folded(), 20);
    let version = runtime.publish(refresher.assemble());
    assert_eq!(version, ModelVersion(2));
    assert_eq!(runtime.current_version(), ModelVersion(2));

    // Phase C: the same drift is now within SLO — no new verdicts —
    // while genuinely extreme traces are still flagged, under v2.
    for i in 0..20u64 {
        runtime.submit_batch(trace(3000 + i, 3_000 + i * 2).spans().to_vec(), 40_000);
    }
    for i in 0..5u64 {
        runtime.submit_batch(trace(4000 + i, 50_000).spans().to_vec(), 40_000);
    }
    runtime.tick(50_000);
    wait_until(
        || runtime.metrics().traces_completed.get() >= 75,
        "phase C completion",
    );

    let mut report = runtime.shutdown();
    verdicts.append(&mut report.verdicts);
    let m = &report.metrics;

    // Zero dropped traces, every span accounted for.
    assert_conservation(m);
    assert_eq!(m.spans_rejected + m.spans_shed + m.spans_evicted, 0);
    assert_eq!(m.traces_completed, 75);
    assert_eq!(m.traces_malformed, 0);
    assert_eq!(report.store.trace_count(), 75);

    // Verdicts followed the refreshed baselines: the re-drifted phase
    // C traffic produced no verdicts; only the extreme traces did.
    assert_eq!(verdicts.len(), 25);
    assert!(
        verdicts.iter().all(|v| !(3000..3020).contains(&v.trace_id)),
        "drifted traffic was flagged after the refresh"
    );
    let v2_verdicts: Vec<&Verdict> = verdicts
        .iter()
        .filter(|v| v.model_version == ModelVersion(2))
        .collect();
    assert_eq!(v2_verdicts.len(), 5);
    assert!(v2_verdicts.iter().all(|v| (4000..4005).contains(&v.trace_id)));
    assert_versions_monotonic(&verdicts);

    // Swap metrics: exactly one hot swap (the initial publish is not a
    // swap), one drain latency sample, and per-version verdict counts
    // that add up.
    assert_eq!(m.model_swaps, 1);
    assert_eq!(m.swap_drain_us.count, 1);
    assert_eq!(m.verdicts_by_version, vec![(1, 20), (2, 5)]);
    assert_eq!(m.verdicts_emitted, 25);
}

/// The same drill with the *background* refresher: completed traces
/// are teed into the refresh thread, which publishes drift-absorbing
/// pipelines on its own every `interval_traces` folds.
#[test]
fn background_refresher_absorbs_drift() {
    let pipeline = baseline_pipeline();
    let config = ServeConfig::builder()
        .num_shards(2)
        .idle_timeout_us(1_000)
        .refresh(RefreshConfig {
            interval_traces: 30,
            queue_capacity: 256,
            min_op_samples: 10,
        })
        .build()
        .expect("valid serve config");
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), config).expect("start runtime");
    let mut verdicts: Vec<Verdict> = Vec::new();

    // Healthy traffic; the first background refresh (at 30 folds)
    // publishes v2 with still-healthy baselines.
    for i in 0..30u64 {
        runtime.submit_batch(trace(1000 + i, 1000 + i).spans().to_vec(), 0);
    }
    runtime.tick(10_000);
    wait_until(
        || runtime.metrics().baseline_refreshes.get() >= 1,
        "first background refresh",
    );

    // Drifted traffic (3000..3090µs): flagged while baselines are
    // stale. The second refresh (at 60 folds) sees a mixture whose
    // p95 sits inside the drifted band, absorbing the drift.
    for i in 0..30u64 {
        runtime.submit_batch(trace(2000 + i, 3_000 + i * 3).spans().to_vec(), 20_000);
    }
    runtime.tick(30_000);
    wait_until(
        || runtime.metrics().baseline_refreshes.get() >= 2,
        "drift-absorbing refresh",
    );
    assert!(runtime.current_version() >= ModelVersion(3));

    // Mildly-slow traffic below the drifted band: accepted by every
    // post-drift baseline (sketch p95 ≥ 3000µs), so no new verdicts.
    verdicts.extend(runtime.poll_verdicts());
    for i in 0..10u64 {
        runtime.submit_batch(trace(3000 + i, 2_900 + i * 5).spans().to_vec(), 40_000);
    }
    runtime.tick(50_000);
    wait_until(
        || runtime.metrics().traces_completed.get() >= 70,
        "post-refresh completion",
    );

    let mut report = runtime.shutdown();
    verdicts.append(&mut report.verdicts);
    let m = &report.metrics;

    assert_conservation(m);
    assert_eq!(m.traces_completed, 70);
    assert_eq!(m.traces_malformed, 0);
    assert!(
        verdicts.iter().all(|v| !(3000..3010).contains(&v.trace_id)),
        "post-refresh traffic below the drifted band was flagged"
    );
    assert_versions_monotonic(&verdicts);

    // Refresher accounting: every completed trace was folded exactly
    // once (the queue never shed), and staleness was recorded per
    // publish.
    assert_eq!(m.refresh_traces_folded, m.traces_completed);
    assert_eq!(m.refresh_traces_shed, 0);
    assert!(m.baseline_refreshes >= 2);
    assert_eq!(m.refresh_staleness_traces.count, m.baseline_refreshes);
    assert_eq!(m.model_swaps, m.baseline_refreshes);
    let tagged: u64 = m.verdicts_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(tagged, m.verdicts_emitted);
}

/// Publishing while the runtime is stalled under backpressure must
/// complete (the RCA stage leases per batch, so a publish waits for at
/// most one in-flight batch) and verdicts keep flowing afterwards.
#[test]
fn publish_during_backpressure_stall_completes() {
    let pipeline = baseline_pipeline();
    let config = ServeConfig::builder()
        .num_shards(1)
        .shard_queue_capacity(1)
        .rca_queue_capacity(1)
        .idle_timeout_us(1_000)
        .build()
        .expect("valid serve config");
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), config).expect("start runtime");

    // Flood with anomalous traces through single-slot queues: the RCA
    // stage is continuously busy and shard workers stall on its queue.
    for i in 0..20u64 {
        let spans = trace(7000 + i, 50_000).spans().to_vec();
        while runtime.submit_batch(spans.clone(), 0).rejected > 0 {
            std::thread::yield_now();
        }
    }
    runtime.tick(10_000);

    // Publish mid-stall: the same pipeline, so verdict content is
    // unchanged — only the version tag moves.
    let version = runtime.publish(Arc::clone(&pipeline));
    assert_eq!(version, ModelVersion(2));

    let report = runtime.shutdown();
    let m = &report.metrics;
    assert_conservation(m);
    assert_eq!(m.model_swaps, 1);
    assert_eq!(report.verdicts.len(), 20, "one verdict per anomalous trace");
    assert!(report
        .verdicts
        .iter()
        .all(|v| v.model_version >= ModelVersion(1) && v.model_version <= ModelVersion(2)));
    assert_versions_monotonic(&report.verdicts);
    let tagged: u64 = m.verdicts_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(tagged, m.verdicts_emitted);
}

/// Shutting down while the refresher is mid-fold — before it ever
/// reaches its publish interval — must not hang, must not publish,
/// and must still fold every completed trace exactly once.
#[test]
fn shutdown_with_refresher_mid_fold_never_publishes() {
    let pipeline = baseline_pipeline();
    let config = ServeConfig::builder()
        .num_shards(2)
        .idle_timeout_us(1_000)
        .refresh(RefreshConfig {
            interval_traces: 1_000_000, // never reached
            queue_capacity: 256,
            min_op_samples: 10,
        })
        .build()
        .expect("valid serve config");
    let runtime = ServeRuntime::start(Arc::clone(&pipeline), config).expect("start runtime");
    for i in 0..10u64 {
        runtime.submit_batch(trace(8000 + i, 1_000).spans().to_vec(), 0);
    }
    // No ticks: shutdown's flush path completes the traces.
    let report = runtime.shutdown();
    let m = &report.metrics;
    assert_eq!(m.traces_completed, 10);
    assert_eq!(m.baseline_refreshes, 0, "interval never reached");
    assert_eq!(m.model_swaps, 0);
    assert_eq!(m.refresh_traces_folded, 10, "backlog folded before exit");
    assert_eq!(m.refresh_traces_shed, 0);
    assert!(report.verdicts.iter().all(|v| v.model_version == ModelVersion(1)));
    assert_conservation(m);
}
