//! Pruning-soundness property suite for the counterfactual RCA.
//!
//! Across **all six** `sleuth_synth::scenario` generators and multiple
//! seeds:
//!
//! * subtree-pruned localisation returns the *identical* root-cause
//!   service set as the unpruned (legacy full-re-prediction) search —
//!   pruning reduces work, never answers;
//! * the pruned search never issues more counterfactual model
//!   evaluations than the legacy search, and on the thousand-service
//!   scenario uses at most half of them in aggregate;
//! * a labelled fault's subtree is never pruned: whenever a trace
//!   carries ground truth and trips the anomaly detector, every
//!   labelled service survives the [`SubtreeScan`].

use std::sync::{Arc, OnceLock};

use sleuth::core::pipeline::SleuthPipeline;
use sleuth::core::{CounterfactualRca, SubtreeScan};
use sleuth::soak::fit_pipeline;
use sleuth::synth::scenario::{Scenario, ScenarioKind, ScenarioParams, ScheduledTrace};
use sleuth::trace::Symbol;

const SEEDS: [u64; 2] = [42, 7];

/// Test-scale params for the five small kinds (shared app ⇒ one fitted
/// pipeline serves them all).
fn params() -> ScenarioParams {
    ScenarioParams {
        duration_us: 240_000_000,
        ..ScenarioParams::smoke()
    }
}

/// Reduced thousand-service scale: the generator still forces the
/// ~1000-service topology; we only shorten the traffic window so the
/// debug-mode test budget holds.
fn thousand_params() -> ScenarioParams {
    ScenarioParams {
        num_rpcs: 1100,
        app_seed: 1,
        duration_us: 60_000_000,
        base_rate_per_sec: 0.5,
    }
}

fn small_pipeline() -> Arc<SleuthPipeline> {
    static P: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(P.get_or_init(|| {
        let probe = Scenario::generate(ScenarioKind::DiurnalFlash, &params(), 0);
        fit_pipeline(&probe, 96, 6, 3.0)
    }))
}

fn thousand_pipeline() -> Arc<SleuthPipeline> {
    static P: OnceLock<Arc<SleuthPipeline>> = OnceLock::new();
    Arc::clone(P.get_or_init(|| {
        let probe = Scenario::generate(ScenarioKind::ThousandServices, &thousand_params(), 0);
        fit_pipeline(&probe, 24, 2, 3.0)
    }))
}

/// Equivalence is a property of the search, not of model quality, so a
/// quickly-fitted model is a fair (and cheap) witness. Sample a
/// bounded mix of fault-carrying and healthy traces per schedule.
fn sample(traces: &[ScheduledTrace]) -> Vec<&ScheduledTrace> {
    let faulted = traces
        .iter()
        .filter(|t| !t.sim.ground_truth.services.is_empty())
        .take(10);
    let healthy = traces
        .iter()
        .filter(|t| t.sim.ground_truth.services.is_empty())
        .take(6);
    faulted.chain(healthy).collect()
}

/// Two localisers off one pipeline: identical model/profile, pruning
/// on vs off.
fn rca_pair(pipeline: &SleuthPipeline) -> (CounterfactualRca, CounterfactualRca) {
    let rca = pipeline.rca();
    let mut pruned = rca.with_profile(rca.profile().clone());
    pruned.prune = true;
    let mut legacy = rca.with_profile(rca.profile().clone());
    legacy.prune = false;
    (pruned, legacy)
}

struct KindStats {
    calls_pruned: u64,
    calls_legacy: u64,
    traces: usize,
    survives_checked: usize,
}

fn check_kind(kind: ScenarioKind, seed: u64, pipeline: &SleuthPipeline) -> KindStats {
    let p = if kind == ScenarioKind::ThousandServices {
        thousand_params()
    } else {
        params()
    };
    let scenario = Scenario::generate(kind, &p, seed);
    let schedule = scenario.schedule();
    let (pruned_rca, legacy_rca) = rca_pair(pipeline);
    let mut stats = KindStats {
        calls_pruned: 0,
        calls_legacy: 0,
        traces: 0,
        survives_checked: 0,
    };
    for st in sample(&schedule.traces) {
        stats.traces += 1;
        let trace = &st.sim.trace;
        let pruned = pruned_rca.localize_report(trace);
        let legacy = legacy_rca.localize_report(trace);
        assert_eq!(
            pruned.services, legacy.services,
            "{}-s{seed} trace {}: pruning changed the verdict",
            kind.name(),
            trace.trace_id()
        );
        assert!(
            pruned.predict_calls <= legacy.predict_calls,
            "{}-s{seed} trace {}: pruned used {} calls, legacy {}",
            kind.name(),
            trace.trace_id(),
            pruned.predict_calls,
            legacy.predict_calls
        );
        stats.calls_pruned += pruned.predict_calls;
        stats.calls_legacy += legacy.predict_calls;

        // A labelled, detector-visible fault must survive the scan.
        let gt = &st.sim.ground_truth.services;
        if !gt.is_empty() && pipeline.detector().is_anomalous(trace) {
            let scan = SubtreeScan::scan(trace, pruned_rca.profile());
            for svc in gt {
                stats.survives_checked += 1;
                assert!(
                    scan.service_survives(trace, Symbol::intern(svc)),
                    "{}-s{seed} trace {}: labelled fault {svc} was pruned",
                    kind.name(),
                    trace.trace_id()
                );
            }
        }
    }
    stats
}

#[test]
fn pruned_rca_is_equivalent_on_all_small_scenarios() {
    let mut traces = 0;
    let mut survives = 0;
    for kind in ScenarioKind::SMALL {
        for seed in SEEDS {
            let s = check_kind(kind, seed, &small_pipeline());
            assert!(
                s.calls_pruned <= s.calls_legacy,
                "{}-s{seed}: pruned aggregate {} exceeds legacy {}",
                kind.name(),
                s.calls_pruned,
                s.calls_legacy
            );
            assert!(s.traces > 0, "{}-s{seed}: empty schedule", kind.name());
            traces += s.traces;
            survives += s.survives_checked;
        }
    }
    // The suite must not pass vacuously: the fault-survival clause has
    // to have fired on real detector-visible labelled faults.
    assert!(traces >= 50, "only {traces} traces sampled across the suite");
    assert!(survives > 0, "no labelled fault was ever checked for survival");
}

#[test]
fn pruned_rca_is_equivalent_and_halves_calls_on_thousand_services() {
    let mut total_pruned = 0u64;
    let mut total_legacy = 0u64;
    for seed in SEEDS {
        let s = check_kind(ScenarioKind::ThousandServices, seed, &thousand_pipeline());
        assert!(s.traces > 0, "thousand_services-s{seed}: empty schedule");
        total_pruned += s.calls_pruned;
        total_legacy += s.calls_legacy;
    }
    assert!(
        total_legacy > 0,
        "thousand-service schedules produced no counterfactual queries"
    );
    assert!(
        2 * total_pruned <= total_legacy,
        "pruned RCA used {total_pruned} predict calls vs {total_legacy} unpruned — \
         expected at most half"
    );
}
