//! End-to-end integration: simulator → pipeline → metrics, spanning
//! every crate in the workspace.

use std::collections::BTreeSet;

use sleuth::baselines::common::RootCauseLocator;
use sleuth::baselines::{MaxDuration, RealtimeRca, Threshold};
use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::eval::EvalAccumulator;
use sleuth::gnn::TrainConfig;
use sleuth::synth::presets;
use sleuth::synth::workload::{AnomalyQuery, CorpusBuilder};

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        train: TrainConfig {
            epochs: 25,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
        ..PipelineConfig::default()
    }
}

fn score(locator: &dyn RootCauseLocator, queries: &[AnomalyQuery]) -> EvalAccumulator {
    let mut acc = EvalAccumulator::new();
    for q in queries {
        for st in &q.traces {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            let pred = locator.localize(&st.trace);
            acc.add_query(&pred, &truth);
        }
    }
    acc
}

#[test]
fn sleuth_beats_rule_based_baselines_end_to_end() {
    let app = presets::synthetic(16, 1);
    let builder = CorpusBuilder::new(&app).seed(77);
    let train = builder.normal_traces(250).plain_traces();
    let queries = builder.anomaly_queries(12, 15);

    let sleuth = SleuthPipeline::fit(&train, &quick_config());
    let sleuth_acc = score(&sleuth, &queries);

    let threshold = Threshold::fit(&train);
    let realtime = RealtimeRca::fit(&train);
    let max = MaxDuration::new();

    let t_acc = score(&threshold, &queries);
    let r_acc = score(&realtime, &queries);
    let m_acc = score(&max, &queries);

    assert!(
        sleuth_acc.f1() > t_acc.f1(),
        "sleuth ({:.3}) must beat threshold ({:.3})",
        sleuth_acc.f1(),
        t_acc.f1()
    );
    assert!(
        sleuth_acc.f1() > r_acc.f1(),
        "sleuth ({:.3}) must beat realtime RCA ({:.3})",
        sleuth_acc.f1(),
        r_acc.f1()
    );
    assert!(
        sleuth_acc.f1() > m_acc.f1(),
        "sleuth ({:.3}) must beat max-duration ({:.3})",
        sleuth_acc.f1(),
        m_acc.f1()
    );
    assert!(
        sleuth_acc.f1() > 0.6,
        "sleuth F1 too low: {:.3}",
        sleuth_acc.f1()
    );
}

#[test]
fn clustering_trades_modest_accuracy_for_fewer_inferences() {
    let app = presets::synthetic(16, 2);
    let builder = CorpusBuilder::new(&app).seed(78);
    let train = builder.normal_traces(250).plain_traces();
    let queries = builder.anomaly_queries(8, 25);
    let sleuth = SleuthPipeline::fit(&train, &quick_config());

    let unclustered = score(&sleuth, &queries);
    let mut clustered = EvalAccumulator::new();
    let mut reps = 0usize;
    let mut total = 0usize;
    for q in &queries {
        let traces: Vec<_> = q.traces.iter().map(|t| &t.trace).collect();
        let results = sleuth.analyze(&traces, Default::default());
        reps += results.iter().filter(|r| r.representative).count();
        total += results.len();
        for (st, r) in q.traces.iter().zip(&results) {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            clustered.add_query(&r.services, &truth);
        }
    }
    assert!(reps < total, "clustering saved nothing: {reps}/{total}");
    // Paper: clustering costs 6.1–9.5% accuracy. Allow a wider band but
    // insist the cost is bounded.
    assert!(
        clustered.f1() > unclustered.f1() - 0.25,
        "clustering lost too much: {:.3} vs {:.3}",
        clustered.f1(),
        unclustered.f1()
    );
}

#[test]
fn pipeline_works_on_hand_built_sockshop() {
    let app = presets::sockshop();
    let builder = CorpusBuilder::new(&app).seed(79);
    let train = builder.normal_traces(250).plain_traces();
    let queries = builder.anomaly_queries(8, 15);
    let sleuth = SleuthPipeline::fit(&train, &quick_config());
    let acc = score(&sleuth, &queries);
    assert!(acc.f1() > 0.5, "sockshop F1 too low: {:.3}", acc.f1());
}
