//! `sleuth-routerd`: the front-end router process.
//!
//! Connects to every `--shard` endpoint, drives traffic through the
//! fleet — either a deterministic synthetic workload (default) or
//! OTLP-JSON spans piped to stdin with `--stdin-otlp` — then shuts
//! the shards down cleanly and prints the merged accounting:
//!
//! ```text
//! sleuth-routerd --shard unix:/tmp/shard0.sock --shard unix:/tmp/shard1.sock \
//!     --traces 64 --anomalies 8
//! ```
//!
//! Exit status is the audit: 0 only when merged span conservation
//! balances across processes (`ROUTER_CONSERVATION ok`) and every
//! routed span is accounted for; 1 when the books don't balance;
//! 2 on usage or connection errors.

use std::io::Read;
use std::process::ExitCode;

use sleuth::serve::Verdict;
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::trace::formats::from_otel_json;
use sleuth::trace::Span;
use sleuth::wire::{Endpoint, RouterClient, RouterConfig};

const USAGE: &str = "usage: sleuth-routerd --shard ENDPOINT [--shard ENDPOINT ...] [options]

options:
  --shard ENDPOINT   shard server to route to (repeat; order = shard index)
  --traces N         synthetic traces to submit (default 64)
  --anomalies N      anomalous traces among them (default 8)
  --seed N           synthetic corpus seed (default 5)
  --rpcs N           synthetic application size in RPC kinds (default 12)
  --stdin-otlp       read OTLP-JSON spans from stdin instead of synthesizing
  --connect-retries N  dial attempts per shard before declaring it dead (default 100)
  --pace-ms N        sleep N ms between submitted batches (gives mid-run
                     process faults a window to land; default 0)
  --hb-interval-ms N heartbeat probe interval (default 100)
  --hb-miss N        consecutive missed probes before a shard is declared
                     dead and failed over (default 3)
  --verdicts         print one VERDICT line per verdict";

struct Args {
    shards: Vec<Endpoint>,
    traces: usize,
    anomalies: usize,
    seed: u64,
    rpcs: usize,
    stdin_otlp: bool,
    connect_retries: u32,
    pace_ms: u64,
    hb_interval_ms: u64,
    hb_miss: u32,
    print_verdicts: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: Vec::new(),
        traces: 64,
        anomalies: 8,
        seed: 5,
        rpcs: 12,
        stdin_otlp: false,
        connect_retries: 100,
        pace_ms: 0,
        hb_interval_ms: 100,
        hb_miss: 3,
        print_verdicts: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--shard" => args
                .shards
                .push(Endpoint::parse(&value("--shard")?).map_err(|e| e.to_string())?),
            "--traces" => args.traces = parse_num(&value("--traces")?, "--traces")?,
            "--anomalies" => args.anomalies = parse_num(&value("--anomalies")?, "--anomalies")?,
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--rpcs" => args.rpcs = parse_num(&value("--rpcs")?, "--rpcs")?,
            "--stdin-otlp" => args.stdin_otlp = true,
            "--connect-retries" => {
                args.connect_retries = parse_num(&value("--connect-retries")?, "--connect-retries")?
            }
            "--pace-ms" => args.pace_ms = parse_num(&value("--pace-ms")?, "--pace-ms")?,
            "--hb-interval-ms" => {
                args.hb_interval_ms = parse_num(&value("--hb-interval-ms")?, "--hb-interval-ms")?
            }
            "--hb-miss" => args.hb_miss = parse_num(&value("--hb-miss")?, "--hb-miss")?,
            "--verdicts" => args.print_verdicts = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.shards.is_empty() {
        return Err(format!("at least one --shard is required\n{USAGE}"));
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: not a number: {s}"))
}

/// Batches of spans to submit, one batch per trace.
fn load_workload(args: &Args) -> Result<Vec<Vec<Span>>, String> {
    if args.stdin_otlp {
        let mut json = String::new();
        std::io::stdin()
            .read_to_string(&mut json)
            .map_err(|e| format!("reading stdin: {e}"))?;
        let spans = from_otel_json(&json).map_err(|e| format!("parsing OTLP JSON: {e:?}"))?;
        if spans.is_empty() {
            return Err("stdin carried no spans".to_string());
        }
        // One batch per trace keeps arrival grouped the way the
        // synthetic path does; routing is per-span either way.
        let mut by_trace: std::collections::BTreeMap<u64, Vec<Span>> =
            std::collections::BTreeMap::new();
        for span in spans {
            by_trace.entry(span.trace_id).or_default().push(span);
        }
        Ok(by_trace.into_values().collect())
    } else {
        let app = presets::synthetic(args.rpcs, 1);
        Ok(CorpusBuilder::new(&app)
            .seed(args.seed)
            .mixed_traces(args.traces, args.anomalies)
            .traces
            .into_iter()
            .map(|t| t.trace.spans().to_vec())
            .collect())
    }
}

fn print_verdict(v: &Verdict) {
    println!(
        "VERDICT trace={} services={:?} cluster={:?} version={} degraded={}",
        v.trace_id, v.services, v.cluster, v.model_version.0, v.degraded
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let batches = match load_workload(&args) {
        Ok(batches) => batches,
        Err(msg) => {
            eprintln!("sleuth-routerd: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut config = RouterConfig::new(args.shards.clone());
    config.reconnect_attempts = args.connect_retries;
    config.heartbeat.interval = std::time::Duration::from_millis(args.hb_interval_ms);
    config.heartbeat.miss_threshold = args.hb_miss;
    let mut router = match RouterClient::connect(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("sleuth-routerd: connect: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "ROUTER_READY shards={} dead={:?}",
        router.num_shards(),
        router.dead_peers()
    );

    let total_spans: usize = batches.iter().map(Vec::len).sum();
    let mut clock = 0u64;
    let mut submitted = 0usize;
    for batch in batches {
        clock += 1_000;
        submitted += batch.len();
        router.submit_batch(batch, clock);
        if args.pace_ms > 0 {
            // Pacing stretches the run so mid-run process faults (a
            // killed or stalled shardd) land while traffic is still
            // flowing, exercising detection + failover rather than
            // only shutdown-time discovery.
            std::thread::sleep(std::time::Duration::from_millis(args.pace_ms));
        }
    }
    // One tick far past the idle timeout finalizes every open trace.
    router.tick(clock + 10_000_000);

    let report = router.shutdown();
    if args.print_verdicts {
        for v in &report.verdicts {
            print_verdict(v);
        }
    }

    let m = &report.metrics;
    let conserved = m.spans_submitted
        == m.spans_stored
            + m.spans_rejected
            + m.spans_shed
            + m.spans_evicted
            + m.spans_deduped
            + m.spans_quarantined;
    let routed_accounted =
        report.wire.spans_routed + report.wire.spans_unroutable == total_spans as u64;
    let degraded = report.verdicts.iter().filter(|v| v.degraded).count();
    println!(
        "ROUTER_VERDICTS total={} degraded={} quarantined={}",
        report.verdicts.len(),
        degraded,
        report.quarantined.len()
    );
    println!(
        "ROUTER_SPANS submitted_batches={} routed={} unroutable={} shard_submitted={}",
        submitted, report.wire.spans_routed, report.wire.spans_unroutable, m.spans_submitted
    );
    println!(
        "ROUTER_WIRE frames_sent={} frames_received={} resent={} rejected={} reconnects={} nacks={} dups_dropped={}",
        report.wire.frames_sent,
        report.wire.frames_received,
        report.wire.frames_resent,
        report.wire.frames_rejected,
        report.wire.reconnects,
        report.wire.nacks_sent,
        report.wire.duplicates_dropped
    );
    println!(
        "ROUTER_FAILOVER failovers={} traces_failed_over={} heartbeats_missed={} verdicts_deduped={} sessions_reset={}",
        report.wire.shard_failovers,
        report.wire.traces_failed_over,
        report.wire.heartbeats_missed,
        report.wire.verdicts_deduped,
        report.wire.sessions_reset
    );
    println!("ROUTER_DEAD peers={:?}", report.dead_peers);
    println!(
        "ROUTER_CONSERVATION {}",
        if conserved && routed_accounted {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    if conserved && routed_accounted {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sleuth-routerd: conservation violated: submitted={} stored={} rejected={} shed={} evicted={} deduped={} quarantined={} routed={} unroutable={} total={}",
            m.spans_submitted,
            m.spans_stored,
            m.spans_rejected,
            m.spans_shed,
            m.spans_evicted,
            m.spans_deduped,
            m.spans_quarantined,
            report.wire.spans_routed,
            report.wire.spans_unroutable,
            total_spans
        );
        ExitCode::from(1)
    }
}
