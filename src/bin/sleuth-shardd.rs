//! `sleuth-shardd`: one shard server process.
//!
//! Fits a pipeline deterministically from `--seed`/`--rpcs`/`--train`
//! (so every shard process — and any router that wants a reference —
//! builds the *same* model without shipping weights over the wire),
//! binds `--addr`, and runs [`sleuth::wire::serve_shard`] until a
//! router drives it through `Shutdown`.
//!
//! ```text
//! sleuth-shardd --addr unix:/tmp/shard0.sock --shard-id 0
//! sleuth-shardd --addr tcp:127.0.0.1:7401 --shard-id 1 --rpcs 12
//! ```
//!
//! On clean shutdown it prints one machine-readable `SHARDD_FINAL`
//! line (shard id, stored trace/span counts, span conservation) and
//! exits 0; any listener or protocol-fatal error exits 2.
//!
//! With `--respawn` the process becomes a *supervisor*: it spawns a
//! worker copy of itself (same flags minus the respawn ones) and, when
//! the worker dies without exiting 0 — crash, `kill -9`, conservation
//! failure — restarts it after a bounded backoff, up to
//! `--max-respawns` times, printing one `SHARDD_RESPAWN` line per
//! restart. A respawned worker rebinds the same endpoint, so a router
//! redialling the dead shard lands on the fresh process; the router's
//! verdict ledger dedups any replayed session tail.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{NoFaults, ServeConfig};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::wire::{
    serve_shard, Endpoint, NoWireFaults, ShardServerConfig, WireListener, WireMetrics,
};

const USAGE: &str = "usage: sleuth-shardd --addr <tcp:HOST:PORT|unix:/PATH> [options]

options:
  --addr ENDPOINT    listen endpoint (required)
  --shard-id N       global shard index stamped on quarantine entries (default 0)
  --seed N           corpus seed for the deterministic pipeline fit (default 5)
  --rpcs N           synthetic application size in RPC kinds (default 12)
  --train N          normal traces in the training corpus (default 120)
  --epochs N         GNN training epochs (default 12)
  --idle-us N        trace idle timeout in microseconds (default 1000000)
  --respawn          supervise: restart the worker when it dies abnormally
  --max-respawns N   restart budget in supervisor mode (default 3)
  --respawn-backoff-ms N
                     base backoff between restarts, doubled per attempt
                     and capped at 8x (default 50)";

struct Args {
    addr: Endpoint,
    shard_id: usize,
    seed: u64,
    rpcs: usize,
    train: usize,
    epochs: usize,
    idle_us: u64,
    respawn: bool,
    max_respawns: u32,
    respawn_backoff_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut shard_id = 0usize;
    let mut seed = 5u64;
    let mut rpcs = 12usize;
    let mut train = 120usize;
    let mut epochs = 12usize;
    let mut idle_us = 1_000_000u64;
    let mut respawn = false;
    let mut max_respawns = 3u32;
    let mut respawn_backoff_ms = 50u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = Some(Endpoint::parse(&value("--addr")?).map_err(|e| e.to_string())?),
            "--shard-id" => shard_id = parse_num(&value("--shard-id")?, "--shard-id")?,
            "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
            "--rpcs" => rpcs = parse_num(&value("--rpcs")?, "--rpcs")?,
            "--train" => train = parse_num(&value("--train")?, "--train")?,
            "--epochs" => epochs = parse_num(&value("--epochs")?, "--epochs")?,
            "--idle-us" => idle_us = parse_num(&value("--idle-us")?, "--idle-us")?,
            "--respawn" => respawn = true,
            "--max-respawns" => max_respawns = parse_num(&value("--max-respawns")?, "--max-respawns")?,
            "--respawn-backoff-ms" => {
                respawn_backoff_ms = parse_num(&value("--respawn-backoff-ms")?, "--respawn-backoff-ms")?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{USAGE}"))?;
    Ok(Args {
        addr,
        shard_id,
        seed,
        rpcs,
        train,
        epochs,
        idle_us,
        respawn,
        max_respawns,
        respawn_backoff_ms,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: not a number: {s}"))
}

/// The fit every process in a topology must agree on: same
/// seed/rpcs/train/epochs → bit-identical pipeline.
fn fit_pipeline(args: &Args) -> Arc<SleuthPipeline> {
    let app = presets::synthetic(args.rpcs, 1);
    let corpus = CorpusBuilder::new(&app)
        .seed(args.seed)
        .normal_traces(args.train)
        .plain_traces();
    let config = PipelineConfig {
        train: TrainConfig {
            epochs: args.epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
        ..PipelineConfig::default()
    };
    Arc::new(SleuthPipeline::fit(&corpus, &config))
}

/// Supervisor mode: run worker copies of this binary (same flags minus
/// the respawn ones) until one exits 0 or the restart budget is spent.
/// A worker that dies to a signal has no exit code; both that and a
/// non-zero exit trigger a respawn. The worker rebinds the endpoint
/// itself ([`WireListener::bind`] clears stale unix socket files), and
/// binds *before* its slow pipeline fit, so a redialling router
/// reconnects as soon as the fresh process is up.
fn supervise(args: &Args) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("sleuth-shardd: current_exe: {e}");
            return ExitCode::from(2);
        }
    };
    let worker_args: Vec<String> = vec![
        "--addr".into(),
        args.addr.to_string(),
        "--shard-id".into(),
        args.shard_id.to_string(),
        "--seed".into(),
        args.seed.to_string(),
        "--rpcs".into(),
        args.rpcs.to_string(),
        "--train".into(),
        args.train.to_string(),
        "--epochs".into(),
        args.epochs.to_string(),
        "--idle-us".into(),
        args.idle_us.to_string(),
    ];
    let metrics = WireMetrics::default();
    let mut attempt = 0u32;
    loop {
        let mut child = match std::process::Command::new(&exe).args(&worker_args).spawn() {
            Ok(child) => child,
            Err(e) => {
                eprintln!("sleuth-shardd: spawn worker: {e}");
                return ExitCode::from(2);
            }
        };
        let status = match child.wait() {
            Ok(status) => status,
            Err(e) => {
                eprintln!("sleuth-shardd: wait worker: {e}");
                return ExitCode::from(2);
            }
        };
        if status.success() {
            println!(
                "SHARDD_SUPERVISOR shard={} respawns_total={}",
                args.shard_id,
                metrics.snapshot().respawns_total
            );
            return ExitCode::SUCCESS;
        }
        if attempt >= args.max_respawns {
            eprintln!(
                "sleuth-shardd: shard {} worker died ({status}); respawn budget spent",
                args.shard_id
            );
            return ExitCode::from(status.code().unwrap_or(2).clamp(0, 255) as u8);
        }
        attempt += 1;
        metrics.respawns_total.inc();
        println!(
            "SHARDD_RESPAWN shard={} attempt={} status={}",
            args.shard_id,
            attempt,
            status.code().map_or_else(|| "signal".to_string(), |c| c.to_string()),
        );
        // Bounded exponential backoff: base * 2^(attempt-1), capped at
        // 8x base so a restart storm can't stretch detection windows
        // unboundedly.
        let factor = 1u64 << (attempt - 1).min(3);
        std::thread::sleep(Duration::from_millis(args.respawn_backoff_ms.saturating_mul(factor)));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.respawn {
        return supervise(&args);
    }
    // Bind before the (slow) fit so a router polling for the socket
    // knows the process is coming up.
    let listener = match WireListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sleuth-shardd: bind {}: {e}", args.addr);
            return ExitCode::from(2);
        }
    };
    let pipeline = fit_pipeline(&args);
    println!(
        "SHARDD_READY shard={} addr={} pid={}",
        args.shard_id,
        args.addr,
        std::process::id()
    );

    let serve = ServeConfig {
        num_shards: 1,
        idle_timeout_us: args.idle_us,
        ..ServeConfig::default()
    };
    let config = ShardServerConfig::new(args.shard_id, serve);
    let metrics = Arc::new(WireMetrics::default());
    match serve_shard(
        &listener,
        pipeline,
        config,
        Arc::new(NoFaults),
        Arc::new(NoWireFaults),
        Arc::clone(&metrics),
    ) {
        Ok(final_state) => {
            let m = &final_state.metrics;
            let conserved = m.spans_submitted
                == m.spans_stored
                    + m.spans_rejected
                    + m.spans_shed
                    + m.spans_evicted
                    + m.spans_deduped
                    + m.spans_quarantined;
            println!(
                "SHARDD_FINAL shard={} traces={} spans={} submitted={} conserved={}",
                args.shard_id,
                final_state.trace_count,
                final_state.span_count,
                m.spans_submitted,
                conserved
            );
            let wire = metrics.snapshot();
            println!(
                "SHARDD_WIRE shard={} frames_sent={} frames_received={} frames_rejected={} resent={}",
                args.shard_id, wire.frames_sent, wire.frames_received, wire.frames_rejected,
                wire.frames_resent
            );
            if conserved {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("sleuth-shardd: serve: {e}");
            ExitCode::from(2)
        }
    }
}
