//! `sleuth-shardd`: one shard server process.
//!
//! Fits a pipeline deterministically from `--seed`/`--rpcs`/`--train`
//! (so every shard process — and any router that wants a reference —
//! builds the *same* model without shipping weights over the wire),
//! binds `--addr`, and runs [`sleuth::wire::serve_shard`] until a
//! router drives it through `Shutdown`.
//!
//! ```text
//! sleuth-shardd --addr unix:/tmp/shard0.sock --shard-id 0
//! sleuth-shardd --addr tcp:127.0.0.1:7401 --shard-id 1 --rpcs 12
//! ```
//!
//! On clean shutdown it prints one machine-readable `SHARDD_FINAL`
//! line (shard id, stored trace/span counts, span conservation) and
//! exits 0; any listener or protocol-fatal error exits 2.

use std::process::ExitCode;
use std::sync::Arc;

use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::gnn::TrainConfig;
use sleuth::serve::{NoFaults, ServeConfig};
use sleuth::synth::presets;
use sleuth::synth::workload::CorpusBuilder;
use sleuth::wire::{
    serve_shard, Endpoint, NoWireFaults, ShardServerConfig, WireListener, WireMetrics,
};

const USAGE: &str = "usage: sleuth-shardd --addr <tcp:HOST:PORT|unix:/PATH> [options]

options:
  --addr ENDPOINT    listen endpoint (required)
  --shard-id N       global shard index stamped on quarantine entries (default 0)
  --seed N           corpus seed for the deterministic pipeline fit (default 5)
  --rpcs N           synthetic application size in RPC kinds (default 12)
  --train N          normal traces in the training corpus (default 120)
  --epochs N         GNN training epochs (default 12)
  --idle-us N        trace idle timeout in microseconds (default 1000000)";

struct Args {
    addr: Endpoint,
    shard_id: usize,
    seed: u64,
    rpcs: usize,
    train: usize,
    epochs: usize,
    idle_us: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut shard_id = 0usize;
    let mut seed = 5u64;
    let mut rpcs = 12usize;
    let mut train = 120usize;
    let mut epochs = 12usize;
    let mut idle_us = 1_000_000u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = Some(Endpoint::parse(&value("--addr")?).map_err(|e| e.to_string())?),
            "--shard-id" => shard_id = parse_num(&value("--shard-id")?, "--shard-id")?,
            "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
            "--rpcs" => rpcs = parse_num(&value("--rpcs")?, "--rpcs")?,
            "--train" => train = parse_num(&value("--train")?, "--train")?,
            "--epochs" => epochs = parse_num(&value("--epochs")?, "--epochs")?,
            "--idle-us" => idle_us = parse_num(&value("--idle-us")?, "--idle-us")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{USAGE}"))?;
    Ok(Args {
        addr,
        shard_id,
        seed,
        rpcs,
        train,
        epochs,
        idle_us,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: not a number: {s}"))
}

/// The fit every process in a topology must agree on: same
/// seed/rpcs/train/epochs → bit-identical pipeline.
fn fit_pipeline(args: &Args) -> Arc<SleuthPipeline> {
    let app = presets::synthetic(args.rpcs, 1);
    let corpus = CorpusBuilder::new(&app)
        .seed(args.seed)
        .normal_traces(args.train)
        .plain_traces();
    let config = PipelineConfig {
        train: TrainConfig {
            epochs: args.epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
        ..PipelineConfig::default()
    };
    Arc::new(SleuthPipeline::fit(&corpus, &config))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // Bind before the (slow) fit so a router polling for the socket
    // knows the process is coming up.
    let listener = match WireListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sleuth-shardd: bind {}: {e}", args.addr);
            return ExitCode::from(2);
        }
    };
    let pipeline = fit_pipeline(&args);
    println!("SHARDD_READY shard={} addr={}", args.shard_id, args.addr);

    let serve = ServeConfig {
        num_shards: 1,
        idle_timeout_us: args.idle_us,
        ..ServeConfig::default()
    };
    let config = ShardServerConfig::new(args.shard_id, serve);
    let metrics = Arc::new(WireMetrics::default());
    match serve_shard(
        &listener,
        pipeline,
        config,
        Arc::new(NoFaults),
        Arc::new(NoWireFaults),
        Arc::clone(&metrics),
    ) {
        Ok(final_state) => {
            let m = &final_state.metrics;
            let conserved = m.spans_submitted
                == m.spans_stored
                    + m.spans_rejected
                    + m.spans_shed
                    + m.spans_evicted
                    + m.spans_deduped
                    + m.spans_quarantined;
            println!(
                "SHARDD_FINAL shard={} traces={} spans={} submitted={} conserved={}",
                args.shard_id,
                final_state.trace_count,
                final_state.span_count,
                m.spans_submitted,
                conserved
            );
            let wire = metrics.snapshot();
            println!(
                "SHARDD_WIRE shard={} frames_sent={} frames_received={} frames_rejected={} resent={}",
                args.shard_id, wire.frames_sent, wire.frames_received, wire.frames_rejected,
                wire.frames_resent
            );
            if conserved {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("sleuth-shardd: serve: {e}");
            ExitCode::from(2)
        }
    }
}
