//! `sleuth-soak`: replay production-shaped failure scenarios against
//! the live serving runtime with continuous assertions.
//!
//! ```text
//! sleuth-soak --smoke                      # tier-1 gate: every small scenario, ≤60 s
//! sleuth-soak --scenario retry_storm --duration-secs 3600 --seed 7
//! sleuth-soak --scenario all --chaos       # full sweep under runtime chaos
//! ```
//!
//! Emits one JSON checkpoint line per logical interval and, per
//! scenario, `SOAK_SCENARIO` / `SOAK_CONSERVATION` / `SOAK_PANICS`
//! audit lines. Exit status: 0 when every scenario finished with an
//! empty violation list, 1 when any continuous assertion failed,
//! 2 on usage errors.

use std::process::ExitCode;
use std::sync::Arc;

use sleuth::chaos::FaultPlan as RuntimeFaultPlan;
use sleuth::soak::{fit_pipeline, run, SoakOptions, SoakOutcome};
use sleuth::synth::scenario::{Scenario, ScenarioKind, ScenarioParams};

const USAGE: &str = "usage: sleuth-soak (--smoke | --scenario NAME) [options]

modes:
  --smoke            every small scenario kind at CI scale under a light
                     chaos plan; deterministic; budgeted for tier-1
  --scenario NAME    one generator kind (diurnal_flash, retry_storm,
                     cascade, partial_deploy, multi_tenant,
                     thousand_services) or `all`

options:
  --seed N           scenario seed (default 42)
  --duration-secs N  logical scenario length (default: 480 smoke-scale,
                     3600 soak-scale)
  --rate R           base arrivals per logical second
  --rpcs N           application size in RPC kinds
  --train-traces N   healthy traces for the pipeline fit (default 160)
  --epochs N         GNN training epochs (default 10)
  --chaos            run under a seeded runtime fault plan (worker
                     kills, RCA panics/delays, shard stalls, clock skew)
  --fault-free       strip fault episodes: the run must produce zero
                     verdicts and zero false anomalies
  --checkpoint-secs N  logical seconds between checkpoint lines (default 60)
  --quiet            suppress checkpoint lines, keep audit lines";

struct Args {
    smoke: bool,
    scenario: Option<String>,
    seed: u64,
    duration_secs: Option<u64>,
    rate: Option<f64>,
    rpcs: Option<usize>,
    train_traces: usize,
    epochs: usize,
    chaos: bool,
    fault_free: bool,
    checkpoint_secs: u64,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        scenario: None,
        seed: 42,
        duration_secs: None,
        rate: None,
        rpcs: None,
        train_traces: 160,
        epochs: 10,
        chaos: false,
        fault_free: false,
        checkpoint_secs: 60,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--duration-secs" => {
                args.duration_secs = Some(parse_num(&value("--duration-secs")?, "--duration-secs")?)
            }
            "--rate" => args.rate = Some(parse_num(&value("--rate")?, "--rate")?),
            "--rpcs" => args.rpcs = Some(parse_num(&value("--rpcs")?, "--rpcs")?),
            "--train-traces" => {
                args.train_traces = parse_num(&value("--train-traces")?, "--train-traces")?
            }
            "--epochs" => args.epochs = parse_num(&value("--epochs")?, "--epochs")?,
            "--chaos" => args.chaos = true,
            "--fault-free" => args.fault_free = true,
            "--checkpoint-secs" => {
                args.checkpoint_secs = parse_num(&value("--checkpoint-secs")?, "--checkpoint-secs")?
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.smoke == args.scenario.is_some() {
        return Err(format!("exactly one of --smoke / --scenario is required\n{USAGE}"));
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: not a number: {s}"))
}

/// A chaos plan that stresses supervision without losing work: worker
/// kills and first-attempt RCA panics are always retried to success,
/// stalls and skew only slow things down. No shard panics, so no
/// traces are quarantined and episode recovery stays assertable.
fn lossless_chaos(seed: u64) -> RuntimeFaultPlan {
    RuntimeFaultPlan {
        seed,
        kill_each_rca_worker_once: true,
        rca_panic_rate: 0.05,
        rca_panic_budget: 4,
        rca_delay_rate: 0.05,
        rca_delay_us: 2_000,
        rca_delay_budget: 8,
        shard_stall_rate: 0.02,
        shard_stall_us: 1_000,
        shard_stall_budget: 8,
        clock_skew_us: 1_500,
        ..RuntimeFaultPlan::default()
    }
}

fn params_for(kind: ScenarioKind, args: &Args) -> ScenarioParams {
    let mut p = if args.smoke { ScenarioParams::smoke() } else { ScenarioParams::soak() };
    if let Some(secs) = args.duration_secs {
        p.duration_us = secs * 1_000_000;
    }
    if let Some(rate) = args.rate {
        p.base_rate_per_sec = rate;
    }
    if let Some(rpcs) = args.rpcs {
        p.num_rpcs = rpcs;
    }
    // Keep the thousand-service sweep affordable at soak rates.
    if kind == ScenarioKind::ThousandServices && args.duration_secs.is_none() && !args.smoke {
        p.duration_us = p.duration_us.min(600_000_000);
    }
    p
}

fn report(outcome: &SoakOutcome) {
    println!(
        "SOAK_SCENARIO name={} seed={} traces={} spans={} retries={} verdicts={} degraded={} \
         duplicates={} tp={} fp={} false_anomalies={} precision={:.3} recall={:.3} episodes={} \
         eligible={} recovered={} rca_p99_us={} logical_secs={} wall_ms={} compression={:.1}",
        outcome.scenario,
        outcome.seed,
        outcome.traces,
        outcome.spans,
        outcome.retries,
        outcome.verdicts,
        outcome.degraded_verdicts,
        outcome.duplicate_verdicts,
        outcome.true_positives,
        outcome.false_positives,
        outcome.false_anomalies,
        outcome.precision,
        outcome.recall,
        outcome.episodes.len(),
        outcome.episodes.iter().filter(|e| e.eligible_traces > 0).count(),
        outcome.episodes.iter().filter(|e| e.recovered).count(),
        outcome.rca_p99_us,
        outcome.duration_us / 1_000_000,
        outcome.wall_ms,
        outcome.compression,
    );
    for t in &outcome.tenants {
        println!(
            "SOAK_TENANT scenario={} name={} traces={} slo_us={} violations={}",
            outcome.scenario, t.name, t.traces, t.slo_us, t.slo_violations
        );
    }
    println!(
        "SOAK_CONSERVATION {} scenario={}",
        if outcome.conservation_ok { "ok" } else { "VIOLATED" },
        outcome.scenario
    );
    // The process reaching this line means no panic escaped
    // supervision: an escaped worker panic aborts the runtime.
    println!(
        "SOAK_PANICS scenario={} caught={} escaped=0",
        outcome.scenario, outcome.caught_panics
    );
    for v in &outcome.violations {
        println!("SOAK_VIOLATION scenario={} {}", outcome.scenario, v);
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let kinds: Vec<ScenarioKind> = if args.smoke {
        ScenarioKind::SMALL.to_vec()
    } else {
        match args.scenario.as_deref() {
            Some("all") => ScenarioKind::ALL.to_vec(),
            Some(name) => match ScenarioKind::parse(name) {
                Some(kind) => vec![kind],
                None => {
                    eprintln!("sleuth-soak: unknown scenario {name}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            None => unreachable!("parse_args enforces --smoke xor --scenario"),
        }
    };

    let mut scenarios: Vec<Scenario> = kinds
        .iter()
        .map(|&kind| Scenario::generate(kind, &params_for(kind, &args), args.seed))
        .collect();
    if args.fault_free {
        scenarios = scenarios.iter().map(Scenario::fault_free).collect();
    }

    let opts = SoakOptions {
        checkpoint_every_us: args.checkpoint_secs * 1_000_000,
        chaos: if args.chaos || args.smoke {
            Some(lossless_chaos(args.seed))
        } else {
            None
        },
        ..SoakOptions::default()
    };

    // Scenarios from identical params share an app, so one fitted
    // pipeline serves them all; fit once per distinct app.
    let mut fitted: Vec<(String, Arc<sleuth::core::pipeline::SleuthPipeline>)> = Vec::new();
    let mut failures = 0usize;
    let mut total_violations = 0usize;
    for scenario in &scenarios {
        let pipeline = match fitted.iter().find(|(name, _)| *name == scenario.app.name) {
            Some((_, p)) => Arc::clone(p),
            None => {
                let p = fit_pipeline(scenario, args.train_traces, args.epochs, 3.0);
                println!(
                    "SOAK_FIT app={} train_traces={} epochs={}",
                    scenario.app.name, args.train_traces, args.epochs
                );
                fitted.push((scenario.app.name.clone(), Arc::clone(&p)));
                p
            }
        };
        let quiet = args.quiet;
        let outcome = run(scenario, pipeline, &opts, |cp| {
            if !quiet {
                println!("{}", serde_json::to_string(cp).expect("checkpoint serialises"));
            }
        });
        report(&outcome);
        if args.fault_free && outcome.verdicts > 0 {
            println!(
                "SOAK_VIOLATION scenario={} fault-free run produced {} verdicts",
                outcome.scenario, outcome.verdicts
            );
            failures += 1;
            total_violations += 1;
        }
        if !outcome.violations.is_empty() {
            failures += 1;
            total_violations += outcome.violations.len();
        }
    }

    println!(
        "SOAK_RESULT {} scenarios={} failed={} violations={}",
        if failures == 0 { "ok" } else { "fail" },
        scenarios.len(),
        failures,
        total_violations
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
