//! `sleuth` — command-line interface to the reproduction.
//!
//! ```text
//! sleuth generate --rpcs 64 --seed 7 --out app.json
//! sleuth preset --name sockshop --out app.json
//! sleuth simulate --app app.json --traces 100 --format otel --out spans.json
//! sleuth train --app app.json --traces 300 --epochs 30 --out model.json
//! sleuth analyze --app app.json --model model.json --queries 10
//! sleuth experiment table3
//! sleuth specs
//! ```

use std::collections::BTreeSet;
use std::process::ExitCode;

use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth::eval::experiments::{self, EvalScale};
use sleuth::eval::EvalAccumulator;
use sleuth::gnn::{Checkpoint, EncodedTrace, Featurizer, ModelConfig, SleuthModel, TrainConfig};
use sleuth::synth::generator::{generate_app, GeneratorConfig};
use sleuth::synth::workload::CorpusBuilder;
use sleuth::synth::{presets, App};
use sleuth::trace::formats;

/// Minimal `--flag value` argument scanner.
struct Args {
    argv: Vec<String>,
}

impl Args {
    fn get(&self, flag: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    fn get_usize(&self, flag: &str, default: usize) -> Result<usize, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{flag} expects a number, got {v:?}")),
        }
    }

    fn get_u64(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{flag} expects a number, got {v:?}")),
        }
    }

    fn has(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }
}

fn write_or_print(out: Option<&str>, content: &str, what: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {what} to {path}");
            Ok(())
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn load_app(args: &Args) -> Result<App, String> {
    let path = args.get("--app").ok_or("--app <file> is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let app: App = serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    app.validate().map_err(|e| format!("invalid app config: {e}"))?;
    Ok(app)
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let rpcs = args.get_usize("--rpcs", 64)?;
    let seed = args.get_u64("--seed", 1)?;
    let app = generate_app(&GeneratorConfig::synthetic(rpcs), seed);
    eprintln!(
        "generated {}: {} services, {} RPCs, max {} spans",
        app.name,
        app.num_services(),
        app.num_rpcs(),
        app.max_spans()
    );
    let json = serde_json::to_string_pretty(&app).expect("app serialises");
    write_or_print(args.get("--out"), &json, "application config")
}

fn cmd_preset(args: &Args) -> Result<(), String> {
    let app = match args.get("--name") {
        Some("sockshop") => presets::sockshop(),
        Some("socialnetwork") => presets::socialnetwork(),
        Some(other) => return Err(format!("unknown preset {other:?} (sockshop|socialnetwork)")),
        None => return Err("--name <sockshop|socialnetwork> is required".into()),
    };
    let json = serde_json::to_string_pretty(&app).expect("app serialises");
    write_or_print(args.get("--out"), &json, "application config")
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let app = load_app(args)?;
    let n = args.get_usize("--traces", 100)?;
    let seed = args.get_u64("--seed", 0)?;
    let corpus = CorpusBuilder::new(&app).seed(seed).normal_traces(n);
    let spans: Vec<sleuth::trace::Span> = corpus
        .traces
        .iter()
        .flat_map(|t| t.trace.spans().iter().cloned())
        .collect();
    eprintln!("simulated {} traces ({} spans)", n, spans.len());
    let json = match args.get("--format").unwrap_or("otel") {
        "otel" => formats::to_otel_json(&spans),
        "zipkin" => serde_json::to_string_pretty(&formats::to_zipkin(&spans))
            .expect("zipkin records serialise"),
        "jaeger" => serde_json::to_string_pretty(&formats::to_jaeger(&spans))
            .expect("jaeger records serialise"),
        other => return Err(format!("unknown format {other:?} (otel|zipkin|jaeger)")),
    };
    write_or_print(args.get("--out"), &json, "spans")
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let app = load_app(args)?;
    let n = args.get_usize("--traces", 300)?;
    let epochs = args.get_usize("--epochs", 30)?;
    let seed = args.get_u64("--seed", 0)?;
    let corpus = CorpusBuilder::new(&app)
        .seed(seed)
        .mixed_traces(n, 10)
        .plain_traces();
    let cfg = ModelConfig::default();
    let mut featurizer = Featurizer::new(cfg.sem_dim);
    let encoded: Vec<EncodedTrace> = corpus.iter().map(|t| featurizer.encode(t)).collect();
    let mut model = SleuthModel::new(&cfg, seed);
    let report = model.train(
        &encoded,
        &TrainConfig {
            epochs,
            batch_traces: 32,
            lr: 1e-2,
            seed,
        },
    );
    eprintln!(
        "trained {} epochs on {} traces: loss {:.4} -> {:.4} in {:.2?}",
        epochs,
        corpus.len(),
        report.epoch_losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss(),
        report.wall
    );
    let json = serde_json::to_string(&model.to_checkpoint()).expect("checkpoint serialises");
    write_or_print(args.get("--out"), &json, "model checkpoint")
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let app = load_app(args)?;
    let queries_n = args.get_usize("--queries", 10)?;
    let seed = args.get_u64("--seed", 0)?;
    let builder = CorpusBuilder::new(&app).seed(seed);
    let corpus = builder.mixed_traces(300, 10).plain_traces();

    let model = match args.get("--model") {
        Some(path) => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let ck: Checkpoint =
                serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
            SleuthModel::from_checkpoint(&ck)?
        }
        None => {
            eprintln!("no --model given; training from scratch…");
            let cfg = ModelConfig::default();
            let mut featurizer = Featurizer::new(cfg.sem_dim);
            let encoded: Vec<EncodedTrace> =
                corpus.iter().map(|t| featurizer.encode(t)).collect();
            let mut m = SleuthModel::new(&cfg, seed);
            m.train(&encoded, &TrainConfig::default());
            m
        }
    };
    let featurizer = Featurizer::new(model.config().sem_dim);
    let pipeline =
        SleuthPipeline::from_parts(model, featurizer, &corpus, &PipelineConfig::default());

    let queries = builder.anomaly_queries(queries_n, 20);
    let mut acc = EvalAccumulator::new();
    for (qi, q) in queries.iter().enumerate() {
        let traces: Vec<_> = q.traces.iter().map(|t| &t.trace).collect();
        let verdicts = pipeline.analyze(&traces, Default::default());
        for (st, v) in q.traces.iter().zip(&verdicts) {
            let truth: BTreeSet<String> = st.ground_truth.services.iter().cloned().collect();
            acc.add_query(&v.services, &truth);
            if v.representative {
                println!(
                    "query {qi} trace {}: predicted {:?} (injected {:?})",
                    v.trace_idx, v.services, st.ground_truth.services
                );
            }
        }
    }
    println!(
        "\nF1 {:.3}  ACC {:.3} over {} traces",
        acc.f1(),
        acc.accuracy(),
        acc.queries()
    );
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let name = args
        .get("--name")
        .or_else(|| args.argv.get(1).map(String::as_str))
        .ok_or("experiment name required (fig1|fig3|fig5|fig6|fig7|fig8|table1|table3)")?;
    let scale = if args.has("--full") {
        EvalScale::full()
    } else {
        EvalScale::from_env()
    };
    let table = match name {
        "fig1" => experiments::fig1_nsigma(&scale).table(),
        "fig3" => experiments::fig3_duration_cdf(&scale).table(),
        "fig5" => experiments::fig5_scaling(&scale).table(),
        "fig6" => experiments::fig6_updates(&scale).table(),
        "fig7" => experiments::fig7_transfer(&scale).table(),
        "fig8" => experiments::fig8_semantics(&scale).table(),
        "table1" => experiments::table1_specs().table(),
        "table3" => experiments::table3_accuracy(&scale).table(),
        other => return Err(format!("unknown experiment {other:?}")),
    };
    println!("{}", table.render());
    if let Some(path) = args.get("--csv") {
        table
            .write_csv(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote CSV to {path}");
    }
    Ok(())
}

fn usage() -> &'static str {
    "sleuth — trace-based root cause analysis (Sleuth, ASPLOS 2023 reproduction)

USAGE:
  sleuth generate  --rpcs N [--seed S] [--out app.json]
  sleuth preset    --name sockshop|socialnetwork [--out app.json]
  sleuth simulate  --app app.json [--traces N] [--seed S] [--format otel|zipkin|jaeger] [--out spans.json]
  sleuth train     --app app.json [--traces N] [--epochs E] [--seed S] [--out model.json]
  sleuth analyze   --app app.json [--model model.json] [--queries N] [--seed S]
  sleuth experiment <fig1|fig3|fig5|fig6|fig7|fig8|table1|table3> [--full] [--csv out.csv]
  sleuth specs
"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args { argv };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "preset" => cmd_preset(&args),
        "simulate" => cmd_simulate(&args),
        "train" => cmd_train(&args),
        "analyze" => cmd_analyze(&args),
        "experiment" => cmd_experiment(&args),
        "specs" => {
            println!("{}", experiments::table1_specs().table().render());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
