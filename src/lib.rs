//! # Sleuth
//!
//! A from-scratch Rust reproduction of *"Sleuth: A Trace-Based Root
//! Cause Analysis System for Large-Scale Microservices with Graph
//! Neural Networks"* (Gan et al., ASPLOS 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — OpenTelemetry-subset span/trace model, exclusive
//!   duration/error features, duration transform,
//! * [`tensor`] — reverse-mode autodiff engine with graph primitives,
//! * [`embed`] — deterministic semantic text embeddings,
//! * [`store`] — columnar trace store with query operators,
//! * [`synth`] — synthetic microservice generator, simulator, chaos,
//! * [`cluster`] — weighted-Jaccard trace distance, HDBSCAN,
//! * [`gnn`] — the trace GNN (Eq. 2–5) with GIN/GCN aggregators,
//! * [`baselines`] — Max, Threshold, TraceAnomaly, Realtime RCA, Sage,
//!   DeepTraLog,
//! * [`core`] — the end-to-end pipeline: detect → cluster → localise,
//! * [`eval`] — metrics and drivers for every paper table and figure,
//! * [`serve`] — sharded online serving runtime: bounded queues with
//!   backpressure, per-shard collectors, an RCA stage around a shared
//!   fitted pipeline, built-in metrics, worker supervision with
//!   poison-trace quarantine, and deadline-based graceful degradation,
//! * [`chaos`] — deterministic fault-injection harness for the serving
//!   runtime: seeded fault plans (worker panics, stalls, clock skew)
//!   and adversarial span-batch corruptions,
//! * [`soak`] — soak/replay harness: production-shaped scenario
//!   traffic (diurnal/flash-crowd shaping, retry storms, cascades,
//!   partial deploys, multi-tenant SLOs, thousand-service topologies)
//!   replayed against the live runtime on a compressed logical clock
//!   with continuous conservation, latency-SLO and RCA
//!   precision/recall assertions,
//! * [`wire`] — multi-process sharded serving: a length-prefixed
//!   checksummed binary frame protocol, shard-server loop
//!   (`sleuth-shardd`), and a hash-routing front-end
//!   (`sleuth-routerd` / `RouterClient`) with reliable delivery and
//!   network fault injection.
//!
//! # Quickstart
//!
//! ```no_run
//! use sleuth::core::pipeline::{PipelineConfig, SleuthPipeline};
//! use sleuth::synth::presets;
//! use sleuth::synth::workload::CorpusBuilder;
//!
//! // A 16-RPC synthetic application, simulated instead of deployed.
//! let app = presets::synthetic(16, 1);
//! let builder = CorpusBuilder::new(&app).seed(7);
//!
//! // Train the unsupervised pipeline on healthy traffic…
//! let train = builder.normal_traces(300).plain_traces();
//! let sleuth = SleuthPipeline::fit(&train, &PipelineConfig::default());
//!
//! // …then localise the root causes of chaos-injected anomalies.
//! for query in builder.anomaly_queries(5, 20) {
//!     let traces: Vec<_> = query.traces.iter().map(|t| &t.trace).collect();
//!     for verdict in sleuth.analyze(&traces, Default::default()) {
//!         println!(
//!             "trace #{} (cluster {:?}): root cause {:?}",
//!             verdict.trace_idx, verdict.cluster, verdict.services
//!         );
//!     }
//! }
//! ```

pub use sleuth_baselines as baselines;
pub use sleuth_chaos as chaos;
pub use sleuth_cluster as cluster;
pub use sleuth_core as core;
pub use sleuth_embed as embed;
pub use sleuth_eval as eval;
pub use sleuth_gnn as gnn;
pub use sleuth_par as par;
pub use sleuth_serve as serve;
pub use sleuth_soak as soak;
pub use sleuth_store as store;
pub use sleuth_synth as synth;
pub use sleuth_tensor as tensor;
pub use sleuth_trace as trace;
pub use sleuth_wire as wire;
